// The unified experiment driver.
//
//   lmpr list [--filter GLOB]
//   lmpr describe <scenario>
//   lmpr run <scenario...|all> [--full] [--json PATH] [--csv-dir DIR]
//            [--seed N] [--workers N] [--filter GLOB] [--topo SPEC]
//
// `run` prints every scenario in the historical bench format (so quick
// and full numeric results stay byte-identical with the old per-figure
// binaries), optionally exporting per-scenario CSVs and one structured
// JSON run report stamping scenario, config, seed, samples, convergence
// and wall-clock duration.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "discovery/io.hpp"
#include "engine/fm_support.hpp"
#include "engine/replay_support.hpp"
#include "engine/runner.hpp"
#include "serve/session.hpp"
#include "serve/socket.hpp"
#include "shard/island_map.hpp"
#include "topology/factory.hpp"
#include "topology/generic.hpp"

namespace {

using namespace lmpr;
using namespace lmpr::engine;

int usage(std::ostream& os, int code) {
  os << "usage:\n"
        "  lmpr list [--filter GLOB]\n"
        "  lmpr describe <scenario>\n"
        "  lmpr run <scenario...|all> [--full] [--json PATH] "
        "[--csv-dir DIR]\n"
        "           [--seed N] [--workers N] [--filter GLOB] [--topo SPEC]\n"
        "  lmpr fm [--script PATH] [--topo SPEC | --fabric FILE |\n"
        "          --topology SPEC] [--k N] [--layout disjoint|shift]\n"
        "          [--repair-policy first_surviving|load_aware]\n"
        "          [--shards auto|N] [--list-islands]\n"
        "          [--json PATH] [--zero-timings]\n"
        "  lmpr replay [--script PATH] [--topo SPEC | --topology SPEC]"
        " [--k N]\n"
        "              [--layout disjoint|shift]\n"
        "              [--repair-policy first_surviving|load_aware]\n"
        "              [--drop-policy drop|reroute_at_switch]\n"
        "              [--kernel reference|active_set|event]\n"
        "              [--routing oblivious|adaptive]\n"
        "              [--select oblivious|adaptive_credit|"
        "adaptive_occupancy]\n"
        "              [--load X] [--seed N] [--warmup N] [--measure N]\n"
        "              [--drain N] [--window N] [--json PATH]\n"
        "              [--zero-timings]\n"
        "  lmpr serve [--socket PATH | --script PATH]\n"
        "             [--topology SPEC | --fabric FILE] [--k N]\n"
        "             [--layout disjoint|shift]\n"
        "             [--repair-policy first_surviving|load_aware]\n"
        "             [--shards auto|N] [--zero-timings]\n"
        "\n"
        "Scenario names accept globs (e.g. 'fig4?', 'ablation_*').  Pass\n"
        "--full (or set LMPR_FULL=1) for paper-scale runs; the default is\n"
        "quick scale.\n"
        "\n"
        "`fm` replays a fabric-manager event script (cable_down <u> <v>,\n"
        "cable_up <u> <v>, switch_down <s>, switch_up <s>,\n"
        "query <src> <dst>; one per line, '#' comments) against the\n"
        "managed fabric, repairing the LFTs incrementally after every\n"
        "topology event.  --repair-policy picks how displaced path\n"
        "variants are re-homed: first_surviving (next surviving port) or\n"
        "load_aware (spread by per-cable use counts).  The script is read\n"
        "from --script or stdin; --zero-timings blanks wall-clock fields\n"
        "for byte-stable reports.  --shards partitions the fabric into\n"
        "per-island repair domains (auto = one shard per top-level\n"
        "subtree) so island-local faults repair only the rows they can\n"
        "change; reports stay byte-identical to the monolithic manager.\n"
        "--list-islands prints the island/shard partition table and exits\n"
        "without reading a script.\n"
        "\n"
        "`replay` drives the flit-level simulator from the same script:\n"
        "event lines may carry `@<cycle>` stamps (offsets into the\n"
        "measurement window; non-decreasing), repaired LFTs are swapped\n"
        "into the running router and per-window (epoch) metrics track the\n"
        "transient.  --drop-policy decides what happens to packets caught\n"
        "on a killed cable: drop (lost, counted) or reroute_at_switch\n"
        "(re-homed onto a surviving path variant).  --kernel picks the\n"
        "simulation engine (reference scan, active_set, or the\n"
        "idle-cycle-skipping event kernel) -- all three produce\n"
        "bit-identical reports.  --routing adaptive replays against the\n"
        "all-ports adaptive baseline (deterministic credit tie-break);\n"
        "--select adaptive_credit|adaptive_occupancy engages the\n"
        "per-switch variant selector, which re-picks among the K\n"
        "installed LFT variants from live output state at injection and\n"
        "every upward hop (DESIGN.md section 16).  Exit status is 0 iff\n"
        "the run recovered to the pre-fault delay baseline.\n"
        "\n"
        "--topology selects ANY topology family through the factory\n"
        "(XGFT(...) or RRG(switches;degree;hosts_per_switch[;seed]), a\n"
        "seeded random-regular expander) and manages it generically when\n"
        "it is not an XGFT; --topo keeps the XGFT-only spec parser.\n"
        "\n"
        "`serve` runs the routing controller as a long-lived daemon\n"
        "speaking a line protocol (LOAD, TOPO, EVENT, PATH, STATS, GEN,\n"
        "QUIT, SHUTDOWN; see DESIGN.md section 13) over stdin/stdout, a\n"
        "--script file, or a UNIX domain --socket serving one session per\n"
        "connection.  PATH queries are lock-free against an immutable\n"
        "table snapshot, so they never wait for an EVENT repair in\n"
        "flight.  --topology/--fabric preload a fabric before the first\n"
        "request.\n";
  return code;
}

int cmd_list(const util::Cli& cli) {
  const std::string filter = cli.get_or("filter", "*");
  if (const auto unknown = cli.unknown_flags(); !unknown.empty()) {
    std::cerr << "lmpr list: unknown flag --" << unknown.front() << "\n";
    return 2;
  }
  util::Table table({"scenario", "family", "paper artifact", "description"});
  std::size_t shown = 0;
  for (const auto& scenario : ScenarioRegistry::builtin().all()) {
    if (!glob_match(filter, scenario.name)) continue;
    table.add_row({scenario.name, std::string(to_string(scenario.family)),
                   scenario.artifact, scenario.description});
    ++shown;
  }
  table.print(std::cout);
  std::cout << shown << " scenario" << (shown == 1 ? "" : "s")
            << "; run one with: lmpr run <scenario> [--full]\n";
  return 0;
}

int cmd_describe(const util::Cli& cli) {
  if (const auto unknown = cli.unknown_flags(); !unknown.empty()) {
    std::cerr << "lmpr describe: unknown flag --" << unknown.front() << "\n";
    return 2;
  }
  if (cli.positional().size() < 2) {
    std::cerr << "lmpr describe: missing scenario name\n";
    return 2;
  }
  int code = 0;
  for (std::size_t i = 1; i < cli.positional().size(); ++i) {
    const auto& name = cli.positional()[i];
    const Scenario* scenario = ScenarioRegistry::builtin().find(name);
    if (scenario == nullptr) {
      std::cerr << "lmpr describe: unknown scenario '" << name
                << "' (see `lmpr list`)\n";
      code = 1;
      continue;
    }
    std::cout << scenario->name << "\n"
              << "  artifact:     " << scenario->artifact << "\n"
              << "  family:       " << to_string(scenario->family) << "\n"
              << "  description:  " << scenario->description << "\n"
              << "  quick params: " << scenario->quick_params << "\n"
              << "  full params:  " << scenario->full_params << "\n";
  }
  return code;
}

int cmd_run(const util::Cli& cli) {
  // Query run-specific flags before CommonOptions::from_cli enforces
  // unknown_flags().
  const std::string json_path = cli.get_or("json", "");
  const std::string csv_dir = cli.get_or("csv-dir", "");
  const std::string filter = cli.get_or("filter", "");
  CommonOptions options;
  try {
    options = CommonOptions::from_cli(cli);
  } catch (const std::exception& error) {
    std::cerr << "lmpr run: " << error.what() << "\n";
    return 2;
  }

  const auto& registry = ScenarioRegistry::builtin();
  std::vector<const Scenario*> selected;
  const auto add_unique = [&](const Scenario* scenario) {
    if (std::find(selected.begin(), selected.end(), scenario) ==
        selected.end()) {
      selected.push_back(scenario);
    }
  };
  const auto& names = cli.positional();
  if (names.size() < 2) {
    std::cerr << "lmpr run: name at least one scenario (or 'all')\n";
    return 2;
  }
  for (std::size_t i = 1; i < names.size(); ++i) {
    const std::string& name = names[i];
    if (name == "all") {
      for (const auto& scenario : registry.all()) add_unique(&scenario);
      continue;
    }
    const auto matched = registry.match(name);
    if (matched.empty()) {
      std::cerr << "lmpr run: no scenario matches '" << name
                << "' (see `lmpr list`)\n";
      return 1;
    }
    for (const Scenario* scenario : matched) add_unique(scenario);
  }
  if (!filter.empty()) {
    std::erase_if(selected, [&](const Scenario* scenario) {
      return !glob_match(filter, scenario->name);
    });
    if (selected.empty()) {
      std::cerr << "lmpr run: --filter '" << filter
                << "' matches no selected scenario\n";
      return 1;
    }
  }

  TextSink text(std::cout);
  std::vector<ReportSink*> sinks{&text};
  std::unique_ptr<CsvDirSink> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<CsvDirSink>(csv_dir);
    sinks.push_back(csv.get());
  }
  std::unique_ptr<JsonSink> json;
  if (!json_path.empty()) {
    json = std::make_unique<JsonSink>(json_path);
    sinks.push_back(json.get());
  }

  const auto reports = run_scenarios(selected, options, sinks);

  double total = 0.0;
  for (const auto& report : reports) total += report.duration_seconds;
  std::cerr << "lmpr: ran " << reports.size() << " scenario"
            << (reports.size() == 1 ? "" : "s") << " ("
            << (options.full ? "full" : "quick") << " scale, seed "
            << options.seed << ") in " << util::Table::num(total, 1) << "s\n";
  if (json != nullptr) {
    if (!json->ok()) return 1;
    std::cerr << "lmpr: json report written to " << json_path << "\n";
  }
  return 0;
}

// Parses `--shards auto|N` into the FabricManager convention: 0 = auto
// (one shard per island), N >= 1 = that many shards.  Returns false on
// anything else ("0", garbage, negatives).
bool parse_shards(const std::string& text, std::size_t& shards) {
  if (text == "auto") {
    shards = 0;
    return true;
  }
  // stoull accepts (and wraps!) a leading minus sign; require digits.
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    return false;
  }
  if (pos != text.size() || value == 0) return false;
  shards = static_cast<std::size_t>(value);
  return true;
}

int cmd_fm(const util::Cli& cli) {
  const std::string script_path = cli.get_or("script", "");
  const std::string fabric_path = cli.get_or("fabric", "");
  const std::string topo_text = cli.get_or("topo", "");
  const std::string topology_text = cli.get_or("topology", "");
  const std::string json_path = cli.get_or("json", "");
  const std::string layout_name = cli.get_or("layout", "disjoint");
  const std::string policy_name =
      cli.get_or("repair-policy", "first_surviving");
  const std::int64_t k = cli.get_or("k", std::int64_t{4});
  const bool zero_timings = cli.has("zero-timings");
  const bool list_islands = cli.has("list-islands");
  // A bare --list-islands defaults to the auto partition; an explicit
  // --shards shows (or runs) that clamped shard count instead.
  const std::string shards_text =
      cli.get_or("shards", list_islands ? "auto" : "1");
  if (const auto unknown = cli.unknown_flags(); !unknown.empty()) {
    std::cerr << "lmpr fm: unknown flag --" << unknown.front() << "\n";
    return 2;
  }
  if (static_cast<int>(!fabric_path.empty()) +
          static_cast<int>(!topo_text.empty()) +
          static_cast<int>(!topology_text.empty()) >
      1) {
    std::cerr << "lmpr fm: pass only one of --topo, --fabric, --topology\n";
    return 2;
  }
  if (k < 1) {
    std::cerr << "lmpr fm: --k must be at least 1\n";
    return 2;
  }

  FmRunOptions options;
  if (!parse_shards(shards_text, options.shards)) {
    std::cerr << "lmpr fm: bad --shards '" << shards_text
              << "' (expected auto or a positive count)\n";
    return 2;
  }
  options.config.k_paths = static_cast<std::uint64_t>(k);
  options.config.zero_timings = zero_timings;
  if (const auto layout = fabric::layout_from_string(layout_name)) {
    options.config.layout = *layout;
  } else {
    std::cerr << "lmpr fm: unknown layout '" << layout_name
              << "' (expected disjoint or shift)\n";
    return 2;
  }
  if (const auto policy = fabric::repair_policy_from_string(policy_name)) {
    options.config.repair_policy = *policy;
  } else {
    std::cerr << "lmpr fm: unknown repair policy '" << policy_name
              << "' (expected first_surviving or load_aware)\n";
    return 2;
  }
  discovery::RawFabric fabric;
  if (!fabric_path.empty()) {
    auto loaded = discovery::try_load_fabric_file(fabric_path);
    if (!loaded.ok) {
      std::cerr << "lmpr fm: " << loaded.error << "\n";
      return 1;
    }
    fabric = std::move(loaded.fabric);
    options.fabric = &fabric;
  } else if (!topology_text.empty()) {
    try {
      const auto topology = topo::make_topology(topology_text);
      fabric = topo::to_raw_fabric(*topology);
      options.topology_name = topology->name();
    } catch (const std::exception& error) {
      std::cerr << "lmpr fm: bad --topology: " << error.what() << "\n";
      return 2;
    }
    options.fabric = &fabric;
    options.config.allow_generic = true;
  } else if (!topo_text.empty()) {
    try {
      options.spec = topo::XgftSpec::parse(topo_text);
    } catch (const std::exception& error) {
      std::cerr << "lmpr fm: bad --topo: " << error.what() << "\n";
      return 2;
    }
  }

  if (list_islands) {
    // Dry run: recognize the fabric, print the island/shard partition the
    // requested --shards value would produce, and exit without reading a
    // script.
    std::unique_ptr<fm::FabricManager> manager;
    if (options.fabric != nullptr) {
      manager =
          std::make_unique<fm::FabricManager>(*options.fabric, options.config);
    } else {
      manager =
          std::make_unique<fm::FabricManager>(options.spec, options.config);
    }
    if (!manager->ok()) {
      std::cerr << "lmpr fm: " << manager->error() << "\n";
      return 1;
    }
    const shard::IslandMap map(manager->topology(), options.shards);
    std::cout << shard::render_island_table(map, manager->topology());
    return 0;
  }

  fm::EventScript script;
  if (script_path.empty() || script_path == "-") {
    script = fm::parse_event_script(std::cin);
  } else {
    std::ifstream in(script_path);
    if (!in) {
      std::cerr << "lmpr fm: cannot open script " << script_path << "\n";
      return 1;
    }
    script = fm::parse_event_script(in);
  }

  Report report;
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  if (!run_fm_events(options, script, report, error)) {
    std::cerr << "lmpr fm: " << error << "\n";
    return 1;
  }
  if (!zero_timings) {
    report.duration_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }

  TextSink text(std::cout);
  text.consume(report);
  if (!json_path.empty()) {
    JsonSink json(json_path);
    json.consume(report);
    json.finish();
    if (!json.ok()) return 1;
    std::cerr << "lmpr fm: json report written to " << json_path << "\n";
  }
  return report.converged ? 0 : 1;
}

int cmd_replay(const util::Cli& cli) {
  const std::string script_path = cli.get_or("script", "");
  const std::string topo_text = cli.get_or("topo", "");
  const std::string topology_text = cli.get_or("topology", "");
  const std::string json_path = cli.get_or("json", "");
  const std::string layout_name = cli.get_or("layout", "disjoint");
  const std::string policy_name =
      cli.get_or("repair-policy", "first_surviving");
  const std::string drop_name = cli.get_or("drop-policy", "drop");
  const std::string kernel_name = cli.get_or("kernel", "active_set");
  const std::string routing_name = cli.get_or("routing", "oblivious");
  const std::string select_name = cli.get_or("select", "oblivious");
  const std::int64_t k = cli.get_or("k", std::int64_t{4});
  const bool zero_timings = cli.has("zero-timings");

  ReplayRunOptions options;
  options.config = quick_replay_config();
  options.config.sim.offered_load =
      cli.get_or("load", options.config.sim.offered_load);
  options.config.sim.seed = static_cast<std::uint64_t>(cli.get_or(
      "seed", static_cast<std::int64_t>(options.config.sim.seed)));
  options.config.sim.warmup_cycles = static_cast<std::uint64_t>(cli.get_or(
      "warmup", static_cast<std::int64_t>(options.config.sim.warmup_cycles)));
  options.config.sim.measure_cycles = static_cast<std::uint64_t>(cli.get_or(
      "measure",
      static_cast<std::int64_t>(options.config.sim.measure_cycles)));
  options.config.sim.drain_cycles = static_cast<std::uint64_t>(cli.get_or(
      "drain", static_cast<std::int64_t>(options.config.sim.drain_cycles)));
  options.config.window_cycles = static_cast<std::uint64_t>(cli.get_or(
      "window", static_cast<std::int64_t>(options.config.window_cycles)));
  if (const auto unknown = cli.unknown_flags(); !unknown.empty()) {
    std::cerr << "lmpr replay: unknown flag --" << unknown.front() << "\n";
    return 2;
  }
  if (k < 1) {
    std::cerr << "lmpr replay: --k must be at least 1\n";
    return 2;
  }
  options.config.fm.k_paths = static_cast<std::uint64_t>(k);
  options.config.fm.zero_timings =
      zero_timings || options.config.fm.zero_timings;
  if (const auto layout = fabric::layout_from_string(layout_name)) {
    options.config.fm.layout = *layout;
  } else {
    std::cerr << "lmpr replay: unknown layout '" << layout_name
              << "' (expected disjoint or shift)\n";
    return 2;
  }
  if (const auto policy = fabric::repair_policy_from_string(policy_name)) {
    options.config.fm.repair_policy = *policy;
  } else {
    std::cerr << "lmpr replay: unknown repair policy '" << policy_name
              << "' (expected first_surviving or load_aware)\n";
    return 2;
  }
  if (const auto policy = flit::drop_policy_from_string(drop_name)) {
    options.config.sim.drop_policy = *policy;
  } else {
    std::cerr << "lmpr replay: unknown drop policy '" << drop_name
              << "' (expected drop or reroute_at_switch)\n";
    return 2;
  }
  if (const auto kernel = flit::kernel_from_string(kernel_name)) {
    options.config.sim.kernel = *kernel;
  } else {
    std::cerr << "lmpr replay: unknown kernel '" << kernel_name
              << "' (expected reference, active_set or event)\n";
    return 2;
  }
  if (const auto routing = flit::routing_mode_from_string(routing_name)) {
    options.config.sim.routing_mode = *routing;
  } else {
    std::cerr << "lmpr replay: unknown routing mode '" << routing_name
              << "' (expected oblivious or adaptive)\n";
    return 2;
  }
  if (const auto select = adaptive::select_policy_from_string(select_name)) {
    options.config.sim.select = *select;
  } else {
    std::cerr << "lmpr replay: unknown select policy '" << select_name
              << "' (expected oblivious, adaptive_credit or"
                 " adaptive_occupancy)\n";
    return 2;
  }
  if (options.config.sim.select != adaptive::SelectPolicy::kOblivious &&
      options.config.sim.routing_mode != flit::RoutingMode::kOblivious) {
    std::cerr << "lmpr replay: --select " << select_name << " and --routing "
              << routing_name
              << " are mutually exclusive (the all-ports adaptive baseline"
                 " already ignores the tables)\n";
    return 2;
  }
  if (!topo_text.empty() && !topology_text.empty()) {
    std::cerr << "lmpr replay: pass --topo or --topology, not both\n";
    return 2;
  }
  discovery::RawFabric fabric;
  if (!topology_text.empty()) {
    try {
      const auto topology = topo::make_topology(topology_text);
      fabric = topo::to_raw_fabric(*topology);
      options.topology_name = topology->name();
    } catch (const std::exception& error) {
      std::cerr << "lmpr replay: bad --topology: " << error.what() << "\n";
      return 2;
    }
    options.fabric = &fabric;
    options.config.fm.allow_generic = true;
  } else if (!topo_text.empty()) {
    try {
      options.spec = topo::XgftSpec::parse(topo_text);
    } catch (const std::exception& error) {
      std::cerr << "lmpr replay: bad --topo: " << error.what() << "\n";
      return 2;
    }
  }

  fm::EventScript script;
  if (script_path.empty() || script_path == "-") {
    script = fm::parse_event_script(std::cin);
  } else {
    std::ifstream in(script_path);
    if (!in) {
      std::cerr << "lmpr replay: cannot open script " << script_path << "\n";
      return 1;
    }
    script = fm::parse_event_script(in);
  }

  Report report;
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  if (!run_replay(options, script, report, error)) {
    std::cerr << "lmpr replay: " << error << "\n";
    return 1;
  }
  if (!zero_timings) {
    report.duration_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }

  TextSink text(std::cout);
  text.consume(report);
  if (!json_path.empty()) {
    JsonSink json(json_path);
    json.consume(report);
    json.finish();
    if (!json.ok()) return 1;
    std::cerr << "lmpr replay: json report written to " << json_path << "\n";
  }
  return report.converged ? 0 : 1;
}

int cmd_serve(const util::Cli& cli) {
  const std::string socket_path = cli.get_or("socket", "");
  const std::string script_path = cli.get_or("script", "");
  const std::string fabric_path = cli.get_or("fabric", "");
  const std::string topology_text = cli.get_or("topology", "");
  const std::string layout_name = cli.get_or("layout", "disjoint");
  const std::string policy_name =
      cli.get_or("repair-policy", "first_surviving");
  const std::int64_t k = cli.get_or("k", std::int64_t{4});
  const std::string shards_text = cli.get_or("shards", "1");
  const bool zero_timings = cli.has("zero-timings");
  if (const auto unknown = cli.unknown_flags(); !unknown.empty()) {
    std::cerr << "lmpr serve: unknown flag --" << unknown.front() << "\n";
    return 2;
  }
  if (!socket_path.empty() && !script_path.empty()) {
    std::cerr << "lmpr serve: pass --socket or --script, not both\n";
    return 2;
  }
  if (!fabric_path.empty() && !topology_text.empty()) {
    std::cerr << "lmpr serve: pass --topology or --fabric, not both\n";
    return 2;
  }
  if (k < 1) {
    std::cerr << "lmpr serve: --k must be at least 1\n";
    return 2;
  }

  serve::ServeConfig config;
  if (!parse_shards(shards_text, config.shards)) {
    std::cerr << "lmpr serve: bad --shards '" << shards_text
              << "' (expected auto or a positive count)\n";
    return 2;
  }
  config.fm.k_paths = static_cast<std::uint64_t>(k);
  config.fm.zero_timings = zero_timings;
  if (const auto layout = fabric::layout_from_string(layout_name)) {
    config.fm.layout = *layout;
  } else {
    std::cerr << "lmpr serve: unknown layout '" << layout_name
              << "' (expected disjoint or shift)\n";
    return 2;
  }
  if (const auto policy = fabric::repair_policy_from_string(policy_name)) {
    config.fm.repair_policy = *policy;
  } else {
    std::cerr << "lmpr serve: unknown repair policy '" << policy_name
              << "' (expected first_surviving or load_aware)\n";
    return 2;
  }

  serve::RoutingService service(config);
  if (!topology_text.empty() || !fabric_path.empty()) {
    const serve::LoadOutcome outcome =
        !topology_text.empty() ? service.load_spec(topology_text)
                               : service.load_file(fabric_path);
    if (!outcome.ok) {
      std::cerr << "lmpr serve: " << outcome.error << "\n";
      return 2;
    }
    std::cerr << "lmpr serve: " << outcome.name << " ready (hosts="
              << outcome.hosts << " cables=" << outcome.cables
              << " k=" << outcome.k_paths << ")\n";
  }

  if (!socket_path.empty()) {
    if (!serve::socket_supported()) {
      std::cerr << "lmpr serve: --socket is not supported on this platform\n";
      return 2;
    }
    std::cerr << "lmpr serve: listening on " << socket_path << "\n";
    std::string error;
    const int code = serve::run_socket_server(service, socket_path, error);
    if (code != 0) std::cerr << "lmpr serve: " << error << "\n";
    return code;
  }
  if (!script_path.empty() && script_path != "-") {
    std::ifstream in(script_path);
    if (!in) {
      std::cerr << "lmpr serve: cannot open script " << script_path << "\n";
      return 1;
    }
    serve::run_session(service, in, std::cout);
    return 0;
  }
  serve::run_session(service, std::cin, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"full", "zero-timings", "list-islands"});
  if (cli.positional().empty()) {
    const bool help = cli.has("help");
    return usage(help ? std::cout : std::cerr, help ? 0 : 2);
  }
  const std::string& command = cli.positional().front();
  if (command == "list") return cmd_list(cli);
  if (command == "describe") return cmd_describe(cli);
  if (command == "run") return cmd_run(cli);
  if (command == "fm") return cmd_fm(cli);
  if (command == "replay") return cmd_replay(cli);
  if (command == "serve") return cmd_serve(cli);
  if (command == "help") return usage(std::cout, 0);
  std::cerr << "lmpr: unknown command '" << command << "'\n";
  return usage(std::cerr, 2);
}
