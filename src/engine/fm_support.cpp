#include "engine/fm_support.hpp"

#include <memory>
#include <utility>

#include "shard/sharded_manager.hpp"
#include "util/table.hpp"

namespace lmpr::engine {

namespace {

std::string event_operands(const fm::Event& event) {
  if (event.type == fm::EventType::kSwitchDown ||
      event.type == fm::EventType::kSwitchUp) {
    return std::to_string(event.a);
  }
  return std::to_string(event.a) + " " + std::to_string(event.b);
}

// Monolithic manager for shards == 1, ShardedFabricManager otherwise.
// Either way the caller holds a plain fm::FabricManager pointer; the
// report schema (and bytes) do not depend on the choice.
template <typename Source>
std::unique_ptr<fm::FabricManager> make_manager(const Source& source,
                                                const FmRunOptions& options) {
  if (options.shards == 1) {
    return std::make_unique<fm::FabricManager>(source, options.config);
  }
  shard::ShardConfig config;
  config.fm = options.config;
  config.shards = options.shards;
  return std::make_unique<shard::ShardedFabricManager>(source, config);
}

}  // namespace

bool run_fm_events(const FmRunOptions& options, const fm::EventScript& script,
                   Report& report, std::string& error) {
  if (!script.ok) {
    error = script.error;
    return false;
  }
  std::unique_ptr<fm::FabricManager> manager;
  if (options.fabric != nullptr) {
    manager = make_manager(*options.fabric, options);
    report.add_config("topology",
                      options.topology_name.empty()
                          ? "external fabric (" +
                                std::to_string(options.fabric->num_nodes) +
                                " nodes)"
                          : options.topology_name);
  } else {
    manager = make_manager(options.spec, options);
    report.add_config("topology", options.spec.to_string());
  }
  if (!manager->ok()) {
    error = manager->error();
    return false;
  }

  report.scenario = "fm";
  report.artifact = "fabric manager";
  report.family = std::string(to_string(Family::kAnalysis));
  report.add_config("k_paths", std::to_string(options.config.k_paths));
  report.add_config("layout",
                    std::string(to_string(options.config.layout)));
  report.add_config("repair_policy",
                    std::string(to_string(options.config.repair_policy)));
  report.add_config("full_rebuild_threshold",
                    util::Table::num(options.config.full_rebuild_threshold, 2));
  report.add_config("events", std::to_string(script.events.size()));

  util::Table log({"idx", "event", "operands", "ok", "churn", "repaired",
                   "full_rebuild", "repair_ms", "disc_pairs", "max_load",
                   "usable", "paths", "hops", "note"});
  std::size_t event_errors = 0;
  for (std::size_t i = 0; i < script.events.size(); ++i) {
    const fm::EventRecord record = manager->apply(script.events[i]);
    if (!record.ok) ++event_errors;
    log.add_row({util::Table::num(i),
                 std::string(to_string(record.event.type)),
                 event_operands(record.event), record.ok ? "yes" : "no",
                 util::Table::num(record.churn),
                 util::Table::num(record.destinations_repaired),
                 record.full_rebuild ? "yes" : "no",
                 util::Table::num(record.repair_seconds * 1e3),
                 util::Table::num(static_cast<std::size_t>(
                     record.disconnected_pairs)),
                 util::Table::num(record.max_link_load),
                 util::Table::num(static_cast<std::size_t>(
                     record.usable_variants)),
                 util::Table::num(static_cast<std::size_t>(
                     record.distinct_paths)),
                 util::Table::num(record.primary_hops),
                 record.ok ? std::string() : record.error});
  }

  const fm::FmSummary& summary = manager->summary();
  report.add_metric("events", static_cast<double>(summary.events));
  report.add_metric("topology_events",
                    static_cast<double>(summary.topology_events));
  report.add_metric("queries", static_cast<double>(summary.queries));
  report.add_metric("event_errors", static_cast<double>(event_errors));
  report.add_metric("total_churn", static_cast<double>(summary.total_churn));
  report.add_metric("destinations_repaired",
                    static_cast<double>(summary.destinations_repaired));
  report.add_metric("full_rebuilds",
                    static_cast<double>(summary.full_rebuilds));
  report.add_metric("max_disconnected_window",
                    static_cast<double>(summary.max_disconnected_window));
  report.add_metric("disconnected_pairs",
                    static_cast<double>(summary.disconnected_pairs));
  report.add_metric("total_repair_ms", summary.total_repair_seconds * 1e3);
  report.samples = script.events.size();
  report.converged = event_errors == 0;
  report.add_section("Fabric-manager event log, " +
                         std::string(to_string(options.config.layout)) +
                         " layout, K=" +
                         std::to_string(options.config.k_paths),
                     std::move(log));
  return true;
}

}  // namespace lmpr::engine
