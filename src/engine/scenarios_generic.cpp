// Generic-graph scenarios: the same permutation traffic, flit sweep and
// fm fault/repair script driven through topo::GenericGraphTopology and an
// equivalent-radix XGFT side by side -- the end-to-end proof that the
// whole stack runs on arbitrary fabrics, and a first look at how K-path
// spreading on an expander compares with the fat-tree it replaces.
#include <memory>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "engine/study.hpp"
#include "flow/link_load.hpp"
#include "flow/traffic.hpp"
#include "fm/events.hpp"
#include "fm/fabric_manager.hpp"
#include "topology/generic.hpp"

namespace lmpr::engine {

namespace {

struct Candidate {
  std::string label;
  std::unique_ptr<const topo::Topology> topology;
  discovery::RawFabric fabric;  ///< identity export (raw ids = node ids)
};

/// The fat-tree and the expander are matched on host count AND switch
/// radix, so the comparison isolates the wiring, not the hardware:
///  quick: XGFT(2;4,4;2,2) (16 hosts, radix-6 edge switches) vs
///         RRG(8;4;2)      (16 hosts, 8 radix-6 switches);
///  full:  XGFT(2;8,8;4,4) (64 hosts, radix-12 edge switches) vs
///         RRG(32;10;2)    (64 hosts, 32 radix-12 switches).
std::vector<Candidate> make_candidates(bool full) {
  const topo::XgftSpec spec =
      full ? topo::XgftSpec{{8, 8}, {4, 4}} : topo::XgftSpec{{4, 4}, {2, 2}};
  const std::uint32_t switches = full ? 32 : 8;
  const std::uint32_t degree = full ? 10 : 4;
  const discovery::RawFabric expander =
      topo::build_expander_fabric(switches, degree, /*hosts_per_switch=*/2);

  std::vector<Candidate> candidates;
  candidates.push_back({"xgft", std::make_unique<topo::Xgft>(spec), {}});
  candidates.push_back(
      {"rrg", std::make_unique<topo::GenericGraphTopology>(expander), {}});
  for (Candidate& candidate : candidates) {
    candidate.fabric = topo::to_raw_fabric(*candidate.topology);
  }
  return candidates;
}

/// The fault script both fabrics replay: the first inter-switch cable
/// dies, a pair is queried while degraded, the cable heals, the pair is
/// queried again.  Raw ids are node ids (identity export).
fm::EventScript fault_script(const Candidate& candidate) {
  const std::uint64_t hosts = candidate.topology->num_hosts();
  std::string text;
  for (const auto& [u, v] : candidate.fabric.cables) {
    if (u >= hosts && v >= hosts) {
      text += "cable_down " + std::to_string(u) + " " + std::to_string(v) +
              "\n";
      text += "query 0 " + std::to_string(hosts - 1) + "\n";
      text += "cable_up " + std::to_string(u) + " " + std::to_string(v) + "\n";
      text += "query 0 " + std::to_string(hosts - 1) + "\n";
      break;
    }
  }
  return fm::parse_event_script(text);
}

void run_generic_vs_xgft(const RunContext& ctx, Report& report) {
  const auto candidates = make_candidates(ctx.full());
  const std::uint64_t hosts = candidates.front().topology->num_hosts();
  const std::size_t num_tms = ctx.full() ? 5 : 2;
  bool ok = true;

  // Part 1 -- flow-level link load: identical permutation matrices routed
  // by d-mod-k and disjoint(K) on both wirings.
  struct Series {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  const Series series[] = {
      {"dmodk", route::Heuristic::kDModK, 1},
      {"disjoint(2)", route::Heuristic::kDisjoint, 2},
      {"disjoint(4)", route::Heuristic::kDisjoint, 4},
  };
  util::Table flow_table({"topology", "heuristic", "K", "mean_max_load"});
  for (const Candidate& candidate : candidates) {
    flow::LoadEvaluator eval(*candidate.topology);
    for (const Series& s : series) {
      util::Rng rng{ctx.derived_seed("generic_vs_xgft")};
      double sum = 0.0;
      for (std::size_t i = 0; i < num_tms; ++i) {
        util::Rng tm_rng{ctx.derived_seed("generic_vs_xgft_tm") + i};
        const auto tm = flow::TrafficMatrix::random_permutation(hosts, tm_rng);
        sum += eval.evaluate(tm, s.heuristic, s.k, rng).max_load;
      }
      const double mean = sum / static_cast<double>(num_tms);
      flow_table.add_row({candidate.label, s.name, util::Table::num(s.k),
                          util::Table::num(mean)});
      report.add_metric(candidate.label + "_max_load_" + s.name, mean);
    }
  }
  report.add_section("Permutation max link load, expander vs fat-tree",
                     std::move(flow_table));

  // Part 2 -- flit-level sweep: saturation throughput and low-load delay
  // under identical fixed pairings, disjoint(4) on both.
  const auto base = flit_base_config(ctx.full());
  const auto loads = flit_load_grid(ctx.full());
  const auto pairings =
      shared_pairings(hosts, ctx.seed(), ctx.full() ? 3 : 1);
  util::Table flit_table(
      {"topology", "max_throughput_%", "low_load_delay_cyc"});
  for (const Candidate& candidate : candidates) {
    const route::RouteTable rt(*candidate.topology,
                               route::Heuristic::kDisjoint, 4, ctx.seed());
    const auto result =
        measure_saturation(rt, base, loads, pairings, &ctx.pool());
    ok = ok && result.max_throughput > 0.0;
    flit_table.add_row({candidate.label,
                        util::Table::num(100.0 * result.max_throughput, 2),
                        util::Table::num(result.delay_at_low_load, 1)});
    report.add_metric(candidate.label + "_max_throughput_percent",
                      100.0 * result.max_throughput);
  }
  report.add_section("Flit saturation under fixed pairings, disjoint(4)",
                     std::move(flit_table));

  // Part 3 -- fabric-manager fault/repair: the same cable-death script
  // through the managed-LFT path (the expander exercises allow_generic).
  util::Table fm_table({"topology", "events", "event_errors", "total_churn",
                        "repaired", "disc_pairs"});
  for (const Candidate& candidate : candidates) {
    fm::FmConfig config;
    config.k_paths = 4;
    config.zero_timings = true;
    config.allow_generic = true;
    fm::FabricManager manager{candidate.fabric, config};
    if (!manager.ok()) {
      report.add_config("error_" + candidate.label, manager.error());
      ok = false;
      continue;
    }
    const fm::EventScript script = fault_script(candidate);
    std::size_t errors = script.ok ? 0u : 1u;
    for (const fm::Event& event : script.events) {
      if (!manager.apply(event).ok) ++errors;
    }
    const auto& summary = manager.summary();
    ok = ok && errors == 0 && summary.disconnected_pairs == 0;
    fm_table.add_row(
        {candidate.label, util::Table::num(script.events.size()),
         util::Table::num(errors), util::Table::num(summary.total_churn),
         util::Table::num(summary.destinations_repaired),
         util::Table::num(
             static_cast<std::size_t>(summary.disconnected_pairs))});
    report.add_metric(candidate.label + "_fm_event_errors",
                      static_cast<double>(errors));
    report.add_metric(candidate.label + "_fm_total_churn",
                      static_cast<double>(summary.total_churn));
  }
  report.add_section("Fault/repair script through the fabric manager",
                     std::move(fm_table));

  report.add_config("xgft", candidates[0].topology->name());
  report.add_config("rrg", candidates[1].topology->name());
  report.add_config("traffic_matrices", std::to_string(num_tms));
  report.samples = num_tms;
  report.converged = ok;
}

}  // namespace

void register_generic_scenarios(ScenarioRegistry& registry) {
  Scenario scenario;
  scenario.name = "generic_vs_xgft";
  scenario.artifact = "extension";
  scenario.family = Family::kFlit;
  scenario.description =
      "K-path spreading on a random-regular expander vs an "
      "equivalent-radix XGFT: permutation link load, flit saturation and "
      "one fm fault/repair script end-to-end";
  scenario.quick_params =
      "XGFT(2;4,4;2,2) vs RRG(8;4;2), 2 TMs, 1 pairing x 5 loads";
  scenario.full_params =
      "XGFT(2;8,8;4,4) vs RRG(32;10;2), 5 TMs, 3 pairings x 10 loads";
  scenario.run = run_generic_vs_xgft;
  registry.add(scenario);
}

}  // namespace lmpr::engine
