// RunContext: the shared knobs every scenario sees -- scale, seed,
// workers, optional topology override -- plus one shared ThreadPool.
// Results are deterministic functions of (seed, scale); the pool and
// worker count never change numbers (util::ThreadPool's parallel_for is
// index-deterministic).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "topology/spec.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace lmpr::engine {

/// The flags shared by the driver and every legacy bench shim.
///
/// from_cli() enforces Cli::unknown_flags(): it must therefore be called
/// AFTER any caller-specific flags have been queried (the driver parses
/// its --json/--csv-dir/--filter first).  A typo like --fulll aborts the
/// run with the offending flag listed instead of silently running quick
/// scale.
struct CommonOptions {
  bool full = false;
  std::string csv_path;  ///< legacy shim `--csv PATH` (single table)
  std::uint64_t seed = 7;
  std::size_t workers = 0;
  std::string topo;  ///< optional topology override, empty = scenario default

  /// Throws std::invalid_argument listing unrecognized flags.
  static CommonOptions from_cli(const util::Cli& cli);
};

class RunContext {
 public:
  explicit RunContext(const CommonOptions& options)
      : options_(options), pool_(nullptr) {}

  bool full() const noexcept { return options_.full; }
  std::uint64_t seed() const noexcept { return options_.seed; }
  std::size_t workers() const noexcept { return options_.workers; }

  /// The shared worker pool, created lazily on first use so list/describe
  /// and pool-free scenarios never spawn threads.
  util::ThreadPool& pool() const;

  /// Scenario topology override: the parsed --topo spec, or `fallback`.
  topo::XgftSpec topo_or(const topo::XgftSpec& fallback) const;

  /// The paper's stopping rule (99% CI within 2% of the mean, doubling
  /// schedule) at paper scale; a slimmed-down budget for quick runs.
  util::CiStoppingRule stopping_rule() const noexcept;

  /// Deterministic per-scenario seed derivation: mixes the base seed with
  /// a tag (scenario or sub-stream name) via splitmix64 so independent
  /// studies can decorrelate their streams without new CLI surface.
  std::uint64_t derived_seed(std::string_view tag) const noexcept;

 private:
  CommonOptions options_;
  mutable std::unique_ptr<util::ThreadPool> owned_pool_;
  mutable util::ThreadPool* pool_;
};

}  // namespace lmpr::engine
