// Executes scenarios against a RunContext and streams stamped Reports
// into the attached sinks.  Shared by the `lmpr` driver, the legacy
// bench shims and the tests.
#pragma once

#include <vector>

#include "engine/context.hpp"
#include "engine/registry.hpp"
#include "engine/report.hpp"
#include "engine/sinks.hpp"

namespace lmpr::engine {

/// Runs `scenarios` in order under one shared RunContext.  Each report is
/// stamped with scenario identity, scale, seed, workers and wall-clock
/// duration, then handed to every sink; sink finish() fires after the
/// last scenario.  Returns the stamped reports.
std::vector<Report> run_scenarios(const std::vector<const Scenario*>& scenarios,
                                  const CommonOptions& options,
                                  const std::vector<ReportSink*>& sinks);

/// Convenience single-scenario overload (legacy shims, tests).
Report run_scenario(const Scenario& scenario, const CommonOptions& options,
                    const std::vector<ReportSink*>& sinks);

}  // namespace lmpr::engine
