#include "engine/shard_support.hpp"

#include <chrono>
#include <vector>

#include "shard/sharded_manager.hpp"
#include "util/rng.hpp"

namespace lmpr::engine {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

fm::Event cable_event(const fm::FabricManager& manager,
                      const std::vector<std::uint32_t>& inverse,
                      std::uint64_t cable, bool down) {
  const topo::Link& link =
      manager.xgft().link(static_cast<topo::LinkId>(cable));
  return {down ? fm::EventType::kCableDown : fm::EventType::kCableUp,
          inverse[static_cast<std::size_t>(link.src)],
          inverse[static_cast<std::size_t>(link.dst)]};
}

/// The same seeded kill/heal storm the fm scenarios replay (p=0.6 kill).
/// Cable events only: every cable is owned by the island of its lower
/// endpoint, so the storm is island-local by construction and the
/// sharded side repairs remote columns island-scoped throughout.
std::vector<fm::Event> cable_storm(const fm::FabricManager& probe,
                                   std::size_t count, util::Rng& rng) {
  const auto& canonical = probe.canonical();
  std::vector<std::uint32_t> inverse(canonical.size(), 0);
  for (std::uint32_t raw = 0; raw < canonical.size(); ++raw) {
    inverse[static_cast<std::size_t>(canonical[raw])] = raw;
  }
  const std::uint64_t cables = probe.xgft().num_cables();
  std::vector<bool> dead(static_cast<std::size_t>(cables), false);
  std::vector<std::uint64_t> dead_list;
  std::vector<fm::Event> events;
  events.reserve(count);
  while (events.size() < count) {
    const bool kill = dead_list.empty() ||
                      (dead_list.size() < cables && rng.uniform01() < 0.6);
    if (kill) {
      std::uint64_t cable = rng.below(cables);
      while (dead[static_cast<std::size_t>(cable)]) {
        cable = rng.below(cables);
      }
      dead[static_cast<std::size_t>(cable)] = true;
      dead_list.push_back(cable);
      events.push_back(cable_event(probe, inverse, cable, /*down=*/true));
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng.below(dead_list.size()));
      const std::uint64_t cable = dead_list[pick];
      dead_list[pick] = dead_list.back();
      dead_list.pop_back();
      dead[static_cast<std::size_t>(cable)] = false;
      events.push_back(cable_event(probe, inverse, cable, /*down=*/false));
    }
  }
  return events;
}

bool records_match(const fm::EventRecord& a, const fm::EventRecord& b) {
  return a.ok == b.ok && a.churn == b.churn &&
         a.destinations_repaired == b.destinations_repaired &&
         a.full_rebuild == b.full_rebuild &&
         a.disconnected_pairs == b.disconnected_pairs;
}

}  // namespace

ShardBenchResult run_shard_bench(const ShardBenchOptions& options) {
  ShardBenchResult result;

  fm::FmConfig config;
  config.k_paths = options.k_paths;
  config.repair_policy = options.policy;
  // The benchmark measures the repair path itself; the per-event load
  // evaluation is identical work on both sides and would only dilute it.
  config.track_link_load = false;
  config.zero_timings = true;

  fm::FabricManager monolithic{options.spec, config};
  if (!monolithic.ok()) {
    result.error = monolithic.error();
    return result;
  }
  shard::ShardConfig sharded_config;
  sharded_config.fm = config;
  sharded_config.shards = options.shards;
  sharded_config.pool = options.pool;
  shard::ShardedFabricManager sharded{options.spec, sharded_config};
  if (!sharded.ok()) {
    result.error = sharded.error();
    return result;
  }
  result.islands = sharded.islands().num_islands();
  result.shards = sharded.islands().num_shards();

  util::Rng rng{options.seed};
  const auto events = cable_storm(monolithic, options.events, rng);
  result.events = events.size();

  // Lockstep replay: apply each event to both managers, fold the two
  // wall-clocks separately, and fail `identical` on the first divergent
  // record.  The full-table comparison runs once at the end (per-event
  // table scans would dominate the measured time at paper scale).
  bool identical = true;
  for (const auto& event : events) {
    auto start = Clock::now();
    const auto mono_record = monolithic.apply(event);
    result.monolithic_seconds += seconds_since(start);
    start = Clock::now();
    const auto shard_record = sharded.apply(event);
    result.sharded_seconds += seconds_since(start);
    identical = identical && records_match(mono_record, shard_record);
  }
  identical = identical && monolithic.tables() == sharded.tables() &&
              monolithic.policy_tables() == sharded.policy_tables() &&
              monolithic.summary().disconnected_pairs ==
                  sharded.summary().disconnected_pairs &&
              monolithic.summary().total_churn ==
                  sharded.summary().total_churn;
  result.identical = identical;

  const shard::ShardStats total = sharded.aggregate();
  result.columns_full = total.columns_full;
  result.columns_scoped = total.columns_scoped;
  result.total_churn = total.churn;
  if (result.sharded_seconds > 0.0) {
    result.speedup = result.monolithic_seconds / result.sharded_seconds;
    result.sharded_events_per_sec =
        static_cast<double>(result.events) / result.sharded_seconds;
  }
  result.ok = true;
  return result;
}

}  // namespace lmpr::engine
