#include "engine/shim.hpp"

#include <exception>
#include <iostream>

#include "engine/runner.hpp"

namespace lmpr::engine {

int shim_main(int argc, const char* const* argv, const char* scenario_name) {
  const util::Cli cli(argc, argv, {"full"});
  CommonOptions options;
  try {
    options = CommonOptions::from_cli(cli);
  } catch (const std::exception& error) {
    std::cerr << cli.program() << ": " << error.what() << "\n"
              << "supported flags: --full --csv PATH --seed N --workers N "
                 "--topo SPEC\n";
    return 2;
  }
  const Scenario* scenario = ScenarioRegistry::builtin().find(scenario_name);
  if (scenario == nullptr) {
    std::cerr << cli.program() << ": scenario '" << scenario_name
              << "' is not registered\n";
    return 1;
  }
  TextSink text(std::cout);
  std::vector<ReportSink*> sinks{&text};
  LegacyCsvSink csv(options.csv_path, std::cout);
  if (!options.csv_path.empty()) sinks.push_back(&csv);
  run_scenario(*scenario, options, sinks);
  return 0;
}

}  // namespace lmpr::engine
