// Shared study drivers used by several scenarios (formerly spread over
// bench/bench_support.hpp, bench/fig4_common.hpp and
// bench/flit_common.hpp).  Pure computation -- scenarios assemble the
// results into Reports; sinks do the rendering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "core/route_table.hpp"
#include "engine/context.hpp"
#include "flit/network.hpp"
#include "flit/sweep.hpp"
#include "flow/permutation_study.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace lmpr::engine {

/// The four routing series of Figure 4.
inline std::vector<route::Heuristic> figure4_series() {
  return {route::Heuristic::kDModK, route::Heuristic::kShift1,
          route::Heuristic::kDisjoint, route::Heuristic::kRandom};
}

struct Figure4Run {
  util::Table table;
  std::size_t samples = 0;  ///< largest sample count over all cells
  bool converged = true;    ///< every cell met the CI criterion
};

/// Runs one Figure-4 style study: average maximum permutation load per
/// (heuristic, K), one table row per K value.
inline Figure4Run run_figure4(const topo::Xgft& xgft,
                              const std::vector<std::size_t>& k_values,
                              const RunContext& ctx) {
  Figure4Run run{util::Table({"K", "dmodk", "shift1", "disjoint", "random",
                              "dmodk_perf", "shift1_perf", "disjoint_perf",
                              "random_perf", "samples"})};
  for (const std::size_t k : k_values) {
    std::vector<std::string> row{util::Table::num(k)};
    std::vector<std::string> perf_cells;
    std::size_t samples = 0;
    for (const route::Heuristic h : figure4_series()) {
      flow::PermutationStudyConfig config;
      config.heuristic = h;
      config.k_paths = k;
      config.stopping = ctx.stopping_rule();
      config.seed = ctx.seed();
      config.pool = &ctx.pool();
      const auto result = flow::run_permutation_study(xgft, config);
      row.push_back(util::Table::num(result.max_load.mean()));
      perf_cells.push_back(util::Table::num(result.perf.mean()));
      samples = std::max(samples, result.samples);
      run.converged = run.converged && result.converged;
    }
    for (auto& cell : perf_cells) row.push_back(std::move(cell));
    row.push_back(util::Table::num(samples));
    run.table.add_row(std::move(row));
    run.samples = std::max(run.samples, samples);
  }
  return run;
}

/// K sweep used by the Figure 4 scenarios: powers of two up to the
/// topology's maximum path count (always including 1, 3 and the max),
/// thinned in quick mode.
inline std::vector<std::size_t> k_sweep(const topo::Xgft& xgft, bool full) {
  const auto max_paths =
      static_cast<std::size_t>(xgft.spec().num_top_switches());
  std::vector<std::size_t> ks;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    if (k <= max_paths) ks.push_back(k);
  }
  for (std::size_t k = 4; k < max_paths; k *= 2) ks.push_back(k);
  if (ks.back() != max_paths) ks.push_back(max_paths);
  if (!full && ks.size() > 5) {
    // keep 1, 2, one middle value, max/2-ish and max
    std::vector<std::size_t> slim{ks[0], ks[1], ks[ks.size() / 2],
                                  ks[ks.size() - 2], ks.back()};
    return slim;
  }
  return ks;
}

inline flit::SimConfig flit_base_config(bool full) {
  flit::SimConfig config;
  if (full) {
    config.warmup_cycles = 10'000;
    config.measure_cycles = 30'000;
    config.drain_cycles = 10'000;
  } else {
    config.warmup_cycles = 3'000;
    config.measure_cycles = 9'000;
    config.drain_cycles = 3'000;
  }
  return config;
}

inline std::vector<double> flit_load_grid(bool full) {
  return full ? flit::linspace_loads(0.10, 1.00, 10)
              : std::vector<double>{0.3, 0.45, 0.6, 0.75, 0.9};
}

/// Permutation pairings shared across heuristics: pairing i is drawn from
/// seed+i so every routing scheme faces identical traffic.
inline std::vector<std::vector<std::uint64_t>> shared_pairings(
    std::uint64_t hosts, std::uint64_t seed, std::size_t count) {
  std::vector<std::vector<std::uint64_t>> pairings;
  pairings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng rng{seed + i};
    const auto perm = rng.permutation(static_cast<std::size_t>(hosts));
    pairings.emplace_back(perm.begin(), perm.end());
  }
  return pairings;
}

struct SaturationResult {
  double max_throughput = 0.0;      ///< mean over pairings
  double delay_at_low_load = 0.0;   ///< mean message delay, first grid load
  double reorder_at_high_load = 0.0;  ///< out-of-order fraction, last load
};

/// "Maximum throughput achieved" (paper Table 1): sweep the offered load,
/// take the best accepted throughput, average over the shared pairings.
///
/// The (pairing x load) grid is flattened into ONE parallel_for (the pool
/// forbids nested submits), each cell deriving exactly the seed the serial
/// pairing-by-pairing sweep would have used; the reduction runs in index
/// order afterwards, so the result is bit-identical for any worker count
/// including `pool == nullptr`.
inline SaturationResult measure_saturation(
    const route::RouteTable& table, const flit::SimConfig& base,
    const std::vector<double>& loads,
    const std::vector<std::vector<std::uint64_t>>& pairings,
    util::ThreadPool* pool = nullptr) {
  const std::size_t num_loads = loads.size();
  std::vector<flit::SweepPoint> points(pairings.size() * num_loads);
  const auto run_cell = [&](std::size_t f) {
    const std::size_t p = f / num_loads;
    const std::size_t i = f % num_loads;
    flit::SimConfig config = base;
    config.seed = base.seed + 1000 * (p + 1);
    config.fixed_destinations = pairings[p];
    config.offered_load = loads[i];
    // Same per-point derivation as run_load_sweep.
    std::uint64_t mix = config.seed + i;
    config.seed = util::splitmix64(mix);
    points[f] = flit::simulate_load_point(table, config);
  };
  if (pool != nullptr) {
    pool->parallel_for(points.size(), run_cell);
  } else {
    for (std::size_t f = 0; f < points.size(); ++f) run_cell(f);
  }

  SaturationResult result;
  for (std::size_t p = 0; p < pairings.size(); ++p) {
    double best = 0.0;
    for (std::size_t i = 0; i < num_loads; ++i) {
      best = std::max(best, points[p * num_loads + i].throughput);
    }
    result.max_throughput += best;
    result.delay_at_low_load += points[p * num_loads].mean_message_delay;
    result.reorder_at_high_load +=
        points[p * num_loads + num_loads - 1].out_of_order_fraction;
  }
  const auto n = static_cast<double>(pairings.size());
  result.max_throughput /= n;
  result.delay_at_low_load /= n;
  result.reorder_at_high_load /= n;
  return result;
}

/// LFT-routed saturation sweep (adaptive_vs_oblivious and anything else
/// exercising SimConfig::select, which only exists on a destination-
/// routed fabric).  The traffic pattern (hotspot / shift / permutation)
/// comes in through `base.destination_mode`, so there is no pairing loop;
/// the load points parallelize through the LFT run_load_sweep overload
/// with the identical per-point seed derivation.
inline SaturationResult measure_saturation_lft(
    const fabric::Lft& lft, const fabric::Tables& tables,
    const flit::SimConfig& base, const std::vector<double>& loads,
    util::ThreadPool* pool = nullptr) {
  const flit::SweepResult sweep =
      flit::run_load_sweep(lft, tables, base, loads, pool);
  SaturationResult result;
  result.max_throughput = sweep.max_throughput;
  result.delay_at_low_load = sweep.points.front().mean_message_delay;
  result.reorder_at_high_load = sweep.points.back().out_of_order_fraction;
  return result;
}

}  // namespace lmpr::engine
