// The tracked performance baseline: `lmpr run perf_baseline` measures
// flit-simulator cycles/sec (active-set vs reference kernel), the fig5
// quick sweep wall-clock (active + pooled load points vs reference
// serial), flow-level permutation samples/sec (path cache on vs off) and
// LFT build time, then writes BENCH_perf.json into the working directory
// so the perf trajectory of the repo is recorded run over run.
//
// The timings are wall-clock and therefore machine-dependent; the
// RATIOS are what the acceptance tracking cares about.  Every simulation
// result feeding a timing is also cross-checked between the compared
// configurations (same flits delivered, same mean loads), so a speedup
// can never come from silently computing something else.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <vector>

#include "engine/registry.hpp"
#include "engine/serve_support.hpp"
#include "engine/shard_support.hpp"
#include "engine/study.hpp"
#include "fabric/degraded.hpp"
#include "fabric/lft.hpp"
#include "util/json.hpp"

namespace lmpr::engine {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Best-of-N kernel timing: simulate `config` `reps` times and return the
/// (identical) metrics plus the fastest wall-clock.  Single runs of a
/// 12k-cycle simulation jitter 10-20% on a shared machine; the minimum
/// over a few repetitions is the stable estimator of the true cost.
std::pair<flit::SimMetrics, double> timed_run(const route::RouteTable& table,
                                              const flit::SimConfig& config,
                                              int reps = 5) {
  flit::SimMetrics metrics;
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    flit::Network network(table, config);
    metrics = network.run();
    const double seconds = seconds_since(start);
    if (rep == 0 || seconds < best) best = seconds;
  }
  return {std::move(metrics), best};
}

/// LFT-routed timed run (the adaptive-selector overhead bench); also
/// captures the selector counters of the last repetition (they are
/// deterministic, so every repetition produces the same values).
struct LftTimedRun {
  flit::SimMetrics metrics;
  double seconds = 0.0;
  adaptive::SelectorStats selector;
};

LftTimedRun timed_run_lft(const fabric::Lft& lft,
                          const fabric::Tables& tables,
                          const flit::SimConfig& config, int reps = 5) {
  LftTimedRun run;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    flit::Network network(lft, tables, config);
    run.metrics = network.run();
    const double seconds = seconds_since(start);
    if (rep == 0 || seconds < run.seconds) run.seconds = seconds;
    run.selector = network.selector_stats();
  }
  return run;
}

void run_perf_baseline(const RunContext& ctx, Report& report) {
  util::Json doc = util::Json::object();
  doc.set("schema", "lmpr-perf-baseline/v1");
  doc.set("seed", ctx.seed());
  doc.set("workers", static_cast<std::uint64_t>(ctx.pool().worker_count()));
  doc.set("full_scale", ctx.full());

  // -- (a) flit kernel: active-set vs reference cycles/sec ----------------
  // The ISSUE's acceptance topology: XGFT(3;4,4,4;1,2,2), offered loads
  // <= 0.3 where the active sets have the most empty channels to skip.
  const topo::Xgft kernel_xgft{topo::XgftSpec{{4, 4, 4}, {1, 2, 2}}};
  const route::RouteTable kernel_table(kernel_xgft,
                                       route::Heuristic::kDisjoint, 4,
                                       ctx.seed());
  util::Json kernel = util::Json::array();
  double best_speedup_low_load = 0.0;
  {
    flit::SimConfig config;
    config.warmup_cycles = 2'000;
    config.measure_cycles = 8'000;
    config.drain_cycles = 2'000;
    config.seed = ctx.seed();
    const double total_cycles = static_cast<double>(
        config.warmup_cycles + config.measure_cycles + config.drain_cycles);
    for (const double load : {0.1, 0.2, 0.3}) {
      config.offered_load = load;
      config.kernel = flit::Kernel::kReference;
      const auto [ref_metrics, ref_seconds] = timed_run(kernel_table, config);
      config.kernel = flit::Kernel::kActiveSet;
      const auto [act_metrics, act_seconds] = timed_run(kernel_table, config);
      // The differential test proves bit-identity; this cheap cross-check
      // guards the benchmark itself against configuration drift.
      if (act_metrics.flits_delivered != ref_metrics.flits_delivered ||
          act_metrics.throughput != ref_metrics.throughput) {
        report.converged = false;
      }
      const double speedup = ref_seconds / act_seconds;
      util::Json point = util::Json::object();
      point.set("offered_load", load);
      point.set("reference_cycles_per_sec", total_cycles / ref_seconds);
      point.set("active_cycles_per_sec", total_cycles / act_seconds);
      point.set("speedup", speedup);
      kernel.push(std::move(point));
      report.add_metric("kernel_speedup_load_" + util::Table::num(load, 1),
                        speedup);
      best_speedup_low_load = std::max(best_speedup_low_load, speedup);
    }
  }
  doc.set("flit_kernel", std::move(kernel));
  // The acceptance criterion: >= 3x cycles/sec at an offered load <= 0.3.
  // Speedup falls as load rises (more shared arbitration work), so the
  // best point over {0.1, 0.2, 0.3} is the tracked headline figure.
  report.add_metric("kernel_speedup_best_low_load", best_speedup_low_load);

  // -- (a2) event kernel: cycles/sec vs active-set at low load -------------
  // The event kernel's win is idle cycles skipped and hosts asleep, so it
  // is benchmarked where fabrics actually idle: a small edge fabric at
  // offered loads <= 0.05 (production fabrics run their links far below
  // saturation, and whole-network quiescence -- the skip condition -- is
  // a small-pod phenomenon: 64 hosts rarely all go silent at once).
  // `speedup` is event/active so the regression guard's generic >= 1.0
  // walk also asserts the event kernel is never slower than active-set
  // at these loads, and check_perf_baseline.py additionally requires the
  // best point >= 5x.
  const topo::Xgft event_xgft{topo::XgftSpec{{4, 4}, {2, 2}}};
  const route::RouteTable event_table(event_xgft, route::Heuristic::kDisjoint,
                                      4, ctx.seed());
  util::Json event_kernel = util::Json::array();
  double best_event_speedup = 0.0;
  {
    flit::SimConfig config;
    config.warmup_cycles = 4'000;
    config.measure_cycles = 16'000;
    config.drain_cycles = 4'000;
    config.seed = ctx.seed();
    const double total_cycles = static_cast<double>(
        config.warmup_cycles + config.measure_cycles + config.drain_cycles);
    for (const double load : {0.005, 0.01, 0.02, 0.05}) {
      config.offered_load = load;
      config.kernel = flit::Kernel::kReference;
      const auto [ref_metrics, ref_seconds] = timed_run(event_table, config);
      config.kernel = flit::Kernel::kActiveSet;
      const auto [act_metrics, act_seconds] = timed_run(event_table, config);
      config.kernel = flit::Kernel::kEvent;
      const auto [evt_metrics, evt_seconds] = timed_run(event_table, config);
      if (evt_metrics.flits_delivered != ref_metrics.flits_delivered ||
          evt_metrics.throughput != ref_metrics.throughput ||
          evt_metrics.flits_delivered != act_metrics.flits_delivered ||
          evt_metrics.throughput != act_metrics.throughput) {
        report.converged = false;
      }
      const double speedup = act_seconds / evt_seconds;
      util::Json point = util::Json::object();
      point.set("offered_load", load);
      point.set("reference_cycles_per_sec", total_cycles / ref_seconds);
      point.set("active_cycles_per_sec", total_cycles / act_seconds);
      point.set("event_cycles_per_sec", total_cycles / evt_seconds);
      point.set("speedup", speedup);
      point.set("speedup_vs_reference", ref_seconds / evt_seconds);
      event_kernel.push(std::move(point));
      report.add_metric(
          "event_kernel_speedup_load_" + util::Table::num(load, 3), speedup);
      best_event_speedup = std::max(best_event_speedup, speedup);
    }
  }
  doc.set("event_kernel", std::move(event_kernel));
  // The acceptance criterion: >= 5x over active-set at some load <= 0.2.
  report.add_metric("event_kernel_speedup_best_low_load", best_event_speedup);

  // -- (a3) adaptive selector hot-path overhead ----------------------------
  // The variant selector adds a per-arrival decision (a scan of the K
  // candidate output ports at injection and every upward hop, baked into
  // pkt.lid before the active crossbar's route snapshot is taken).  The
  // tracked figure is the ratio of active-set wall-clock, adaptive_credit
  // over oblivious, at MATCHED offered load on the same K=4 disjoint LFTs
  // under shift-1 traffic (where the selector actually engages).
  // Methodology: the two policies are timed in INTERLEAVED pairs and the
  // overhead is the median of the per-pair ratios -- host-noise drift
  // hits both sides of a pair equally and a single contended window
  // cannot move the median, unlike two separately-timed best-of-N blocks
  // whose ratio swings by tens of percent on a shared machine.
  // Deliberately named `overhead`, not `speedup`: adaptive is allowed to
  // be up to 10% slower (check_perf_baseline.py --max-adaptive-overhead),
  // so the generic speedup >= 1.0 walk must not see it.
  {
    const fabric::Lft lft(kernel_xgft, 4, fabric::LidLayout::kDisjointLayout);
    const fabric::Tables tables =
        fabric::build_lft(lft, fabric::Degradation(kernel_xgft));
    flit::SimConfig config;
    config.warmup_cycles = 2'000;
    config.measure_cycles = 24'000;
    config.drain_cycles = 2'000;
    config.seed = ctx.seed();
    config.offered_load = 0.5;
    config.destination_mode = flit::DestinationMode::kShift;
    // Per-PACKET spraying on both sides: the oblivious baseline then
    // exercises the same set of links the adaptive run does, so the
    // measured delta is the selector's machinery (gate reads + candidate
    // scans + DLID rewrites), not the cost of simulating the extra
    // channels adaptivity deliberately activates when the baseline
    // concentrates each flow on one variant.  The BEHAVIORAL comparison
    // (what adaptivity buys at equal load) is adaptive_vs_oblivious's
    // job, not this guard's.
    config.path_selection = flit::PathSelection::kRandomPerPacket;
    constexpr int kPairs = 15;
    std::vector<double> ratios;
    ratios.reserve(kPairs);
    LftTimedRun oblivious;
    LftTimedRun adaptive_run;
    for (int pair = 0; pair < kPairs; ++pair) {
      // Alternate which policy runs first within the pair: a periodic
      // load spike on a shared machine must not systematically land on
      // one side of every ratio.
      LftTimedRun o;
      LftTimedRun a;
      if (pair % 2 == 0) {
        config.select = flit::SelectPolicy::kOblivious;
        o = timed_run_lft(lft, tables, config, 1);
        config.select = flit::SelectPolicy::kAdaptiveCredit;
        a = timed_run_lft(lft, tables, config, 1);
      } else {
        config.select = flit::SelectPolicy::kAdaptiveCredit;
        a = timed_run_lft(lft, tables, config, 1);
        config.select = flit::SelectPolicy::kOblivious;
        o = timed_run_lft(lft, tables, config, 1);
      }
      ratios.push_back(a.seconds / o.seconds);
      if (pair == 0 || o.seconds < oblivious.seconds) oblivious = o;
      if (pair == 0 || a.seconds < adaptive_run.seconds) adaptive_run = a;
    }
    std::nth_element(ratios.begin(), ratios.begin() + kPairs / 2,
                     ratios.end());
    // Degeneracy guard: a "selector overhead" measured while the selector
    // never fired (or never switched variants) would be meaningless.
    if (adaptive_run.selector.decisions == 0 ||
        adaptive_run.selector.switches == 0 ||
        oblivious.selector.decisions != 0) {
      report.converged = false;
    }
    const double overhead = ratios[kPairs / 2];
    util::Json selector_bench = util::Json::object();
    selector_bench.set("topology", kernel_xgft.spec().to_string());
    selector_bench.set("k_paths", std::uint64_t{4});
    selector_bench.set("offered_load", config.offered_load);
    selector_bench.set("policy", "adaptive_credit");
    selector_bench.set("oblivious_seconds", oblivious.seconds);
    selector_bench.set("adaptive_seconds", adaptive_run.seconds);
    selector_bench.set("overhead", overhead);
    selector_bench.set("decisions", adaptive_run.selector.decisions);
    selector_bench.set("switches", adaptive_run.selector.switches);
    doc.set("adaptive_selector", std::move(selector_bench));
    report.add_metric("adaptive_selector_overhead", overhead);
    report.add_metric("adaptive_selector_decisions",
                      static_cast<double>(adaptive_run.selector.decisions));
    report.add_metric("adaptive_selector_switches",
                      static_cast<double>(adaptive_run.selector.switches));
  }

  // -- (b) fig5 quick sweep wall-clock ------------------------------------
  // The fig5 quick workload (8 routing series x 4 loads, one pairing, 15k
  // cycles) timed end-to-end: reference kernel with serial load points
  // (the seed behavior) vs active kernel with pooled load points.
  {
    const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
    struct Series {
      route::Heuristic heuristic;
      std::size_t k;
    };
    const Series series[] = {
        {route::Heuristic::kDModK, 1},    {route::Heuristic::kDisjoint, 2},
        {route::Heuristic::kDisjoint, 8}, {route::Heuristic::kShift1, 2},
        {route::Heuristic::kShift1, 8},   {route::Heuristic::kRandomSingle, 1},
        {route::Heuristic::kRandom, 2},   {route::Heuristic::kRandom, 8},
    };
    const auto base = flit_base_config(false);
    const std::vector<double> loads{0.1, 0.3, 0.5, 0.7};
    const auto pairings = shared_pairings(xgft.num_hosts(), ctx.seed(), 1);

    std::vector<route::RouteTable> tables;
    tables.reserve(std::size(series));
    for (const Series& s : series) {
      tables.emplace_back(xgft, s.heuristic, s.k, ctx.seed());
    }

    const auto run_sweeps = [&](flit::Kernel sweep_kernel,
                                util::ThreadPool* pool) {
      double checksum = 0.0;
      for (const route::RouteTable& table : tables) {
        flit::SimConfig config = base;
        config.seed = ctx.seed();
        config.kernel = sweep_kernel;
        config.fixed_destinations = pairings.front();
        const auto sweep = flit::run_load_sweep(table, config, loads, pool);
        checksum += sweep.max_throughput;
      }
      return checksum;
    };

    // Best-of-3 per configuration (the blocks are seconds long; scheduler
    // jitter still moves single runs a few percent).
    double ref_seconds = 0.0;
    double act_seconds = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto ref_start = Clock::now();
      const double ref_checksum = run_sweeps(flit::Kernel::kReference, nullptr);
      const double ref_rep = seconds_since(ref_start);
      const auto act_start = Clock::now();
      const double act_checksum =
          run_sweeps(flit::Kernel::kActiveSet, &ctx.pool());
      const double act_rep = seconds_since(act_start);
      if (ref_checksum != act_checksum) report.converged = false;
      if (rep == 0 || ref_rep < ref_seconds) ref_seconds = ref_rep;
      if (rep == 0 || act_rep < act_seconds) act_seconds = act_rep;
    }

    const double speedup = ref_seconds / act_seconds;
    util::Json fig5 = util::Json::object();
    fig5.set("series", static_cast<std::uint64_t>(std::size(series)));
    fig5.set("loads", static_cast<std::uint64_t>(loads.size()));
    fig5.set("reference_serial_seconds", ref_seconds);
    fig5.set("active_parallel_seconds", act_seconds);
    fig5.set("speedup", speedup);
    doc.set("fig5_quick_sweep", std::move(fig5));
    report.add_metric("fig5_quick_speedup", speedup);
    report.add_metric("fig5_quick_seconds", act_seconds);
  }

  // -- (c) flow-level permutation samples/sec ------------------------------
  // Fixed sample count (stopping pinned) so cached and uncached runs do
  // identical statistical work.  512 permutations over 128 hosts touch
  // each of the 16k (src,dst) flows ~4 times, so the cache actually gets
  // hits; tiny sample counts would understate the steady-state speedup.
  {
    const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
    flow::PermutationStudyConfig config;
    config.heuristic = route::Heuristic::kDisjoint;
    config.k_paths = 4;
    config.stopping.initial_samples = 512;
    config.stopping.max_samples = 512;
    config.seed = ctx.seed();
    config.pool = &ctx.pool();
    // Isolate the routed MLOAD evaluation the cache accelerates; the
    // per-sample OLOAD bound (track_perf_ratio) is routing-independent
    // and would dilute the ratio.
    config.track_perf_ratio = false;

    // Best-of-5 per configuration: one 512-sample study takes ~30ms, well
    // inside scheduler jitter, so single-shot ratios are unreliable.
    const auto timed_study = [&](bool use_cache) {
      config.use_path_cache = use_cache;
      flow::PermutationStudyResult result;
      double best = 0.0;
      for (int rep = 0; rep < 5; ++rep) {
        const auto start = Clock::now();
        result = flow::run_permutation_study(xgft, config);
        const double seconds = seconds_since(start);
        if (rep == 0 || seconds < best) best = seconds;
      }
      return std::pair{std::move(result), best};
    };
    const auto [uncached, uncached_seconds] = timed_study(false);
    const auto [cached, cached_seconds] = timed_study(true);
    if (cached.max_load.mean() != uncached.max_load.mean()) {
      report.converged = false;
    }

    const auto samples = static_cast<double>(cached.samples);
    util::Json flow_bench = util::Json::object();
    flow_bench.set("samples", static_cast<std::uint64_t>(cached.samples));
    flow_bench.set("uncached_samples_per_sec", samples / uncached_seconds);
    flow_bench.set("cached_samples_per_sec", samples / cached_seconds);
    flow_bench.set("speedup", uncached_seconds / cached_seconds);
    doc.set("flow_permutation_study", std::move(flow_bench));
    report.add_metric("flow_cache_speedup", uncached_seconds / cached_seconds);
    report.add_metric("flow_cached_samples_per_sec", samples / cached_seconds);
  }

  // -- (d) serve throughput under a cable storm ----------------------------
  // The `lmpr serve` headline: PATH queries/sec sustained by hammering
  // reader threads while the ingest thread repairs a cable storm.  No
  // `speedup` field on purpose -- there is no reference implementation to
  // ratio against, so the guard tracks the keys' existence, not a flaky
  // machine-dependent ratio.
  {
    ServeThroughputOptions serve_options;
    serve_options.seed = ctx.seed();
    const ServeThroughputResult serve = run_serve_throughput(serve_options);
    if (!serve.ok || serve.inconsistent != 0) report.converged = false;
    util::Json serve_bench = util::Json::object();
    serve_bench.set("topology", serve_options.spec);
    serve_bench.set("readers", std::uint64_t{serve_options.readers});
    serve_bench.set("storm_events", serve.events);
    serve_bench.set("queries", serve.queries);
    serve_bench.set("queries_per_sec", serve.queries_per_sec);
    serve_bench.set("events_per_sec", serve.events_per_sec);
    serve_bench.set("inconsistent", serve.inconsistent);
    doc.set("serve_throughput", std::move(serve_bench));
    report.add_metric("serve_queries_per_sec", serve.queries_per_sec);
    report.add_metric("serve_events_per_sec", serve.events_per_sec);
  }

  // -- (d2) sharded fabric manager at the paper's Ranger shape -------------
  // Monolithic vs sharded repair wall-clock under one island-local cable
  // storm on XGFT(3;12,12,24;1,12,12) (the paper's 3456-host Ranger
  // point).  The sharded side repairs remote destination columns
  // island-scoped (O(island rows) instead of O(all rows)), so the
  // speedup is algorithmic and holds on a single core; the bench fails
  // `converged` unless the two runs were bit-identical.  The `speedup`
  // field is walked by the generic >= 1.0 guard and
  // check_perf_baseline.py additionally requires >= 4x.
  {
    ShardBenchOptions shard_options;
    shard_options.spec = topo::XgftSpec{{12, 12, 24}, {1, 12, 12}};
    shard_options.events = 6;
    shard_options.seed = ctx.seed();
    shard_options.pool = &ctx.pool();
    const ShardBenchResult shard = run_shard_bench(shard_options);
    if (!shard.ok || !shard.identical) report.converged = false;
    util::Json shard_bench = util::Json::object();
    shard_bench.set("topology", shard_options.spec.to_string());
    shard_bench.set("islands", static_cast<std::uint64_t>(shard.islands));
    shard_bench.set("shards", static_cast<std::uint64_t>(shard.shards));
    shard_bench.set("storm_events", static_cast<std::uint64_t>(shard.events));
    shard_bench.set("columns_full", shard.columns_full);
    shard_bench.set("columns_scoped", shard.columns_scoped);
    shard_bench.set("monolithic_seconds", shard.monolithic_seconds);
    shard_bench.set("sharded_seconds", shard.sharded_seconds);
    shard_bench.set("sharded_events_per_sec", shard.sharded_events_per_sec);
    shard_bench.set("speedup", shard.speedup);
    shard_bench.set("identical", shard.identical);
    doc.set("fm_shard", std::move(shard_bench));
    report.add_metric("fm_shard_speedup", shard.speedup);
    report.add_metric("fm_shard_events_per_sec", shard.sharded_events_per_sec);
  }

  // -- (e) LFT build time ---------------------------------------------------
  {
    const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
    const auto start = Clock::now();
    const fabric::Lft lft(xgft, 8, fabric::LidLayout::kDisjointLayout);
    const route::RouteTable table(xgft, route::Heuristic::kDisjoint, 8,
                                  ctx.seed());
    const double build_seconds = seconds_since(start);
    util::Json lft_bench = util::Json::object();
    lft_bench.set("topology", xgft.spec().to_string());
    lft_bench.set("k_paths", std::uint64_t{8});
    lft_bench.set("build_seconds", build_seconds);
    doc.set("lft_build", std::move(lft_bench));
    report.add_metric("lft_build_seconds", build_seconds);
  }

  const char* out_path = "BENCH_perf.json";
  {
    std::ofstream out(out_path);
    out << doc.dump(2) << "\n";
  }
  report.add_config("bench_file", out_path);
  report.add_config("kernel_topology", kernel_xgft.spec().to_string());
  report.samples = 1;

  util::Table table({"benchmark", "speedup"});
  for (const Metric& metric : report.metrics) {
    table.add_row({metric.name, util::Table::num(metric.value)});
  }
  report.add_section("Perf baseline (ratios; absolute numbers in " +
                         std::string(out_path) + ")",
                     std::move(table));
}

/// One cell of the three-way kernel grid: the same configuration run on
/// all three kernels, with a field-by-field bit-identity check.  The
/// exhaustive comparison (per-message delays, windows, drop accounting)
/// lives in the gtest harnesses; this scenario produces the
/// machine-readable grid summary CI archives as an artifact.
struct KernelCell {
  bool identical = true;
  double seconds[3] = {0.0, 0.0, 0.0};  ///< reference, active_set, event
  double skipped_fraction = 0.0;  ///< idle cycles the event kernel skipped
  /// Variant switches of the (kernel-independent) adaptive selector; the
  /// grid's degeneracy guard requires selector cells to show > 0.
  std::uint64_t selector_switches = 0;
};

template <typename MakeNetwork>
KernelCell run_kernel_cell_impl(MakeNetwork&& make_network,
                                flit::SimConfig config) {
  constexpr flit::Kernel kKernels[] = {flit::Kernel::kReference,
                                       flit::Kernel::kActiveSet,
                                       flit::Kernel::kEvent};
  KernelCell cell;
  flit::SimMetrics baseline;
  adaptive::SelectorStats baseline_selector;
  for (int k = 0; k < 3; ++k) {
    config.kernel = kKernels[k];
    const auto start = Clock::now();
    auto network = make_network(config);
    const flit::SimMetrics metrics = network.run();
    cell.seconds[k] = seconds_since(start);
    if (config.kernel == flit::Kernel::kEvent) {
      cell.skipped_fraction =
          static_cast<double>(network.cycles_skipped()) /
          static_cast<double>(network.horizon());
    }
    if (k == 0) {
      baseline = metrics;
      baseline_selector = network.selector_stats();
      cell.selector_switches = baseline_selector.switches;
      continue;
    }
    cell.identical =
        cell.identical && metrics.throughput == baseline.throughput &&
        metrics.flits_delivered == baseline.flits_delivered &&
        metrics.messages_generated == baseline.messages_generated &&
        metrics.messages_delivered == baseline.messages_delivered &&
        metrics.packets_generated == baseline.packets_generated &&
        metrics.packets_delivered == baseline.packets_delivered &&
        metrics.packets_out_of_order == baseline.packets_out_of_order &&
        metrics.packets_dropped == baseline.packets_dropped &&
        metrics.packets_rerouted == baseline.packets_rerouted &&
        metrics.messages_lost == baseline.messages_lost &&
        metrics.message_delay.mean() == baseline.message_delay.mean() &&
        metrics.packet_delay.mean() == baseline.packet_delay.mean() &&
        metrics.message_delay_dist.p99() == baseline.message_delay_dist.p99() &&
        network.selector_stats() == baseline_selector;
  }
  return cell;
}

KernelCell run_kernel_cell(const route::RouteTable& table,
                           flit::SimConfig config) {
  return run_kernel_cell_impl(
      [&](const flit::SimConfig& c) { return flit::Network(table, c); },
      config);
}

KernelCell run_kernel_cell(const fabric::Lft& lft,
                           const fabric::Tables& tables,
                           flit::SimConfig config) {
  return run_kernel_cell_impl(
      [&](const flit::SimConfig& c) { return flit::Network(lft, tables, c); },
      config);
}

void run_kernel_grid(const RunContext& ctx, Report& report) {
  struct Shape {
    const char* name;
    topo::XgftSpec spec;
  };
  const Shape shapes[] = {
      {"XGFT(2;4,4;2,2)", topo::XgftSpec{{4, 4}, {2, 2}}},
      {"XGFT(3;4,4,4;1,2,2)", topo::XgftSpec{{4, 4, 4}, {1, 2, 2}}},
  };
  struct Case {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
    flit::RoutingMode routing;
    flit::PathSelection selection;
    flit::DestinationMode destinations;
  };
  const Case cases[] = {
      {"disjoint4", route::Heuristic::kDisjoint, 4,
       flit::RoutingMode::kOblivious, flit::PathSelection::kRandomPerMessage,
       flit::DestinationMode::kFixedPermutation},
      {"shift1x2/pkt", route::Heuristic::kShift1, 2,
       flit::RoutingMode::kOblivious, flit::PathSelection::kRandomPerPacket,
       flit::DestinationMode::kPerMessage},
      {"adaptive", route::Heuristic::kDisjoint, 1, flit::RoutingMode::kAdaptive,
       flit::PathSelection::kRandomPerMessage,
       flit::DestinationMode::kFixedPermutation},
  };
  // LFT-routed cells: the adaptive variant selector (and the LFT-mode
  // all-ports adaptive baseline) across all three kernels.  Bit-identity
  // here covers both the metrics AND the selector's decision/switch
  // counters -- the headline claim of DESIGN.md section 16.
  struct LftCase {
    const char* name;
    std::uint64_t k;
    flit::RoutingMode routing;
    flit::SelectPolicy select;
    flit::DestinationMode destinations;
  };
  const LftCase lft_cases[] = {
      {"select_credit/k4/shift1", 4, flit::RoutingMode::kOblivious,
       flit::SelectPolicy::kAdaptiveCredit, flit::DestinationMode::kShift},
      {"select_occup/k4/hotspot", 4, flit::RoutingMode::kOblivious,
       flit::SelectPolicy::kAdaptiveOccupancy,
       flit::DestinationMode::kHotspot},
      {"select_credit/k2/perm", 2, flit::RoutingMode::kOblivious,
       flit::SelectPolicy::kAdaptiveCredit,
       flit::DestinationMode::kFixedPermutation},
      {"allports/k1/perm", 1, flit::RoutingMode::kAdaptive,
       flit::SelectPolicy::kOblivious,
       flit::DestinationMode::kFixedPermutation},
  };
  const double loads[] = {0.1, 0.5};

  std::uint64_t cells = 0;
  util::Table table(
      {"shape", "case", "load", "identical", "event_speedup", "skipped",
       "sel_switches"});
  std::uint64_t mismatches = 0;
  std::uint64_t selector_switches = 0;
  const auto base_config = [&](double load) {
    flit::SimConfig config;
    config.warmup_cycles = 400;
    config.measure_cycles = 1'600;
    config.drain_cycles = 600;
    config.seed = ctx.seed();
    config.offered_load = load;
    return config;
  };
  const auto add_cell = [&](const char* shape, const char* name, double load,
                            const KernelCell& cell) {
    ++cells;
    if (!cell.identical) {
      ++mismatches;
      report.converged = false;
    }
    const double event_speedup = cell.seconds[1] / cell.seconds[2];
    table.add_row({shape, name, util::Table::num(load, 1),
                   cell.identical ? "yes" : "NO",
                   util::Table::num(event_speedup),
                   util::Table::num(cell.skipped_fraction),
                   util::Table::num(cell.selector_switches)});
  };
  for (const Shape& shape : shapes) {
    const topo::Xgft xgft{shape.spec};
    for (const Case& c : cases) {
      const route::RouteTable routes(xgft, c.heuristic, c.k, ctx.seed());
      for (const double load : loads) {
        flit::SimConfig config = base_config(load);
        config.routing_mode = c.routing;
        config.path_selection = c.selection;
        config.destination_mode = c.destinations;
        add_cell(shape.name, c.name, load, run_kernel_cell(routes, config));
      }
    }
    const fabric::Degradation healthy(xgft);
    for (const LftCase& c : lft_cases) {
      const fabric::Lft lft(xgft, c.k, fabric::LidLayout::kDisjointLayout);
      const fabric::Tables lft_tables = fabric::build_lft(lft, healthy);
      for (const double load : loads) {
        flit::SimConfig config = base_config(load);
        config.routing_mode = c.routing;
        config.select = c.select;
        config.destination_mode = c.destinations;
        const KernelCell cell = run_kernel_cell(lft, lft_tables, config);
        selector_switches += cell.selector_switches;
        add_cell(shape.name, c.name, load, cell);
      }
    }
  }
  // Degeneracy guard: if no selector cell ever switched variants, the
  // "adaptive equivalence" rows above proved nothing.
  if (selector_switches == 0) report.converged = false;
  report.add_metric("cells", static_cast<double>(cells));
  report.add_metric("mismatches", static_cast<double>(mismatches));
  report.add_metric("selector_switches",
                    static_cast<double>(selector_switches));
  report.samples = static_cast<std::size_t>(cells);
  report.add_section("Three-way kernel grid (reference / active_set / event)",
                     std::move(table));
}

}  // namespace

void register_perf_scenarios(ScenarioRegistry& registry) {
  Scenario perf;
  perf.name = "perf_baseline";
  perf.artifact = "perf tracking";
  perf.family = Family::kAnalysis;
  perf.description = "Times flit cycles/sec (active and event kernels vs "
                     "the reference scan), adaptive-selector overhead vs "
                     "oblivious at matched load, the fig5 quick sweep, flow "
                     "samples/sec, serve queries/sec under a storm and LFT "
                     "build; writes BENCH_perf.json";
  perf.quick_params = "best-of-5 12k/24k-cycle kernel runs, fig5 quick "
                      "workload, 512 flow samples";
  perf.full_params = "same (the baseline is intentionally fixed-size)";
  perf.run = run_perf_baseline;
  registry.add(perf);

  Scenario grid;
  grid.name = "kernel_grid";
  grid.artifact = "kernel equivalence";
  grid.family = Family::kFlit;
  grid.description =
      "Runs a shapes x cases x loads grid on all three flit kernels "
      "(reference, active_set, event) and reports per-cell bit-identity "
      "(metrics and adaptive-selector counters), event-kernel speedup and "
      "skipped-cycle fraction";
  grid.quick_params = "2 shapes x 7 cases x 2 loads, 2.6k-cycle runs";
  grid.full_params = "same (the grid is intentionally fixed-size)";
  grid.run = run_kernel_grid;
  registry.add(grid);
}

}  // namespace lmpr::engine
