// The serve_throughput workload: hammer a RoutingService with PATH
// queries from reader threads WHILE a cable storm replays through the
// ingest thread, and measure both sides.  Shared between the
// serve_throughput scenario, the perf_baseline section that records the
// numbers in BENCH_perf.json, and the bench smoke test.
#pragma once

#include <cstdint>
#include <string>

namespace lmpr::engine {

struct ServeThroughputOptions {
  /// Factory spec of the served topology.
  std::string spec = "XGFT(3;4,4,4;1,2,2)";
  std::uint64_t k_paths = 4;
  /// Concurrent PATH-query threads.
  unsigned readers = 4;
  /// Cables toggled down-then-up by the storm (2 repairs each).
  std::uint64_t storm_cables = 64;
  std::uint64_t seed = 1;
};

struct ServeThroughputResult {
  bool ok = false;
  std::string error;

  std::uint64_t queries = 0;  ///< PATH queries answered across all readers
  std::uint64_t events = 0;   ///< storm events applied (2 per cable)
  double seconds = 0.0;       ///< storm wall-clock (readers run alongside)
  double queries_per_sec = 0.0;
  double events_per_sec = 0.0;

  /// Reader-observed violations: a failed query, a non-monotonic
  /// generation, or a delivered walk that does not end at the
  /// destination.  MUST be 0 -- anything else is a torn snapshot.
  std::uint64_t inconsistent = 0;
  std::uint64_t final_generation = 0;
};

ServeThroughputResult run_serve_throughput(
    const ServeThroughputOptions& options);

}  // namespace lmpr::engine
