// Built-in scenario groups.  Each register_* function contributes one
// slice of the paper-reproduction suite; register_builtin_scenarios()
// (registry.cpp) calls them all.
#pragma once

namespace lmpr::engine {

class ScenarioRegistry;

void register_fig4_scenarios(ScenarioRegistry& registry);      // fig4a-d + oversubscribed
void register_theorem_scenarios(ScenarioRegistry& registry);   // theorem1, theorem2
void register_flow_scenarios(ScenarioRegistry& registry);      // flow-level ablations/extensions
void register_flit_scenarios(ScenarioRegistry& registry);      // table1, fig5, flit ablations
void register_analysis_scenarios(ScenarioRegistry& registry);  // LID/LFT analyses
void register_fm_scenarios(ScenarioRegistry& registry);        // fabric manager
void register_shard_scenarios(ScenarioRegistry& registry);     // sharded fm scaling
void register_generic_scenarios(ScenarioRegistry& registry);   // generic graphs vs XGFT
void register_replay_scenarios(ScenarioRegistry& registry);    // dynamic fault replay
void register_perf_scenarios(ScenarioRegistry& registry);      // perf_baseline
void register_serve_scenarios(ScenarioRegistry& registry);     // serve_throughput

}  // namespace lmpr::engine
