// The structured result of one scenario run.  Every experiment in the
// suite -- paper figures, tables, theorems, ablations, extensions --
// reports through this type so that text, CSV and JSON sinks can render
// any study uniformly and runs are provenance-stamped (scenario, config,
// seed, sample count, convergence, wall-clock duration).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/table.hpp"

namespace lmpr::engine {

/// Which simulator substrate a scenario exercises (drives CI smoke
/// selection and `lmpr list` grouping).
enum class Family { kFlow, kFlit, kAnalysis };

std::string_view to_string(Family family) noexcept;

/// One titled result table.  Most scenarios emit a single section; a few
/// (e.g. the oversubscribed-tree study) emit one per topology.
struct ReportSection {
  std::string title;
  util::Table table;
};

/// A scalar metric worth surfacing without parsing the series (e.g.
/// "worst_perf_umulti": 1.0).
struct Metric {
  std::string name;
  double value = 0.0;
};

struct Report {
  // Identity (stamped by the engine from the Scenario entry).
  std::string scenario;
  std::string artifact;   ///< paper artifact, e.g. "Figure 4(a)"
  std::string family;     ///< "flow" | "flit" | "analysis"

  // Provenance (stamped by the engine from the RunContext).
  bool full_scale = false;
  std::uint64_t seed = 0;
  std::size_t workers = 0;
  double duration_seconds = 0.0;

  // Filled by the scenario's run function.
  std::vector<std::pair<std::string, std::string>> config;  ///< param echo
  std::vector<Metric> metrics;
  std::vector<ReportSection> sections;
  std::size_t samples = 0;   ///< dominant sample/trial count of the study
  bool converged = true;     ///< false iff a stopping rule hit its cap

  void add_config(std::string key, std::string value) {
    config.emplace_back(std::move(key), std::move(value));
  }
  void add_metric(std::string name, double value) {
    metrics.push_back({std::move(name), value});
  }
  void add_section(std::string title, util::Table table) {
    sections.push_back({std::move(title), std::move(table)});
  }
};

}  // namespace lmpr::engine
