#include "replay/replay.hpp"

#include <algorithm>
#include <utility>

#include "util/contracts.hpp"

namespace lmpr::replay {

ReplayEngine::ReplayEngine(const topo::XgftSpec& spec,
                           const ReplayConfig& config)
    : config_(config) {
  // Epochs need the window accumulators; force them so callers cannot
  // misconfigure.  routing_mode and select pass through (oblivious
  // tables, the all-ports adaptive baseline, or the variant selector).
  config_.sim.window_metrics = true;
  if (config_.window_cycles == 0) {
    error_ = "window_cycles must be positive";
    return;
  }
  manager_ = std::make_unique<fm::FabricManager>(spec, config_.fm);
  if (!manager_->ok()) error_ = manager_->error();
}

ReplayEngine::ReplayEngine(const discovery::RawFabric& fabric,
                           const ReplayConfig& config)
    : config_(config) {
  config_.sim.window_metrics = true;
  if (config_.window_cycles == 0) {
    error_ = "window_cycles must be positive";
    return;
  }
  manager_ = std::make_unique<fm::FabricManager>(fabric, config_.fm);
  if (!manager_->ok()) error_ = manager_->error();
}

ReplayResult ReplayEngine::run(const fm::EventScript& script) {
  ReplayResult result;
  if (!ok()) {
    result.error = error_;
    return result;
  }
  if (!script.ok) {
    result.error = script.error;
    return result;
  }
  const flit::SimConfig& sim = config_.sim;
  const std::vector<fm::TimedEvent> stamps =
      fm::stamp_events(script, sim.measure_cycles);
  for (const fm::TimedEvent& stamp : stamps) {
    if (stamp.cycle > sim.measure_cycles) {
      result.error = "event timestamp @" + std::to_string(stamp.cycle) +
                     " lies beyond the measurement window (" +
                     std::to_string(sim.measure_cycles) + " cycles)";
      return result;
    }
  }

  const topo::Topology& topology = manager_->topology();
  flit::Network net(manager_->lft(), manager_->tables(), sim);
  const std::uint64_t warmup = sim.warmup_cycles;
  const std::uint64_t horizon = net.horizon();

  // Boundary timeline: the metric cadence plus one extra edge per event
  // stamp, deduplicated, all in (warmup, horizon].
  std::vector<std::uint64_t> boundaries;
  for (std::uint64_t b = warmup + config_.window_cycles; b < horizon;
       b += config_.window_cycles) {
    boundaries.push_back(b);
  }
  boundaries.push_back(horizon);
  for (const fm::TimedEvent& stamp : stamps) {
    const std::uint64_t b = warmup + stamp.cycle;
    if (b > warmup && b < horizon) boundaries.push_back(b);
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  // Links stay enabled exactly while their cable and both endpoints are
  // alive; this mask diffs the manager's degradation into the router.
  std::vector<std::uint8_t> enabled(
      static_cast<std::size_t>(topology.num_links()), 1);

  std::vector<fm::EventRecord> pending;
  std::uint64_t pending_dropped = 0;
  std::uint64_t pending_rerouted = 0;
  std::size_t next_event = 0;

  const auto sync_network = [&]() {
    const fabric::Degradation& degradation = manager_->degradation();
    for (topo::NodeId node = static_cast<topo::NodeId>(topology.num_hosts());
         node < topology.num_nodes(); ++node) {
      net.set_switch_state(node, degradation.node_ok(node));
    }
    // The repaired tables go in BEFORE links come down, so the drop
    // policy's re-homing already routes around the fault; the manager
    // mutates its tables in place (and arbitration may switch between
    // the greedy and shadow sets), so the swap must follow every event.
    net.set_tables(manager_->tables());
    for (topo::LinkId link = 0; link < topology.num_links(); ++link) {
      const topo::Link& edge = topology.link(link);
      const bool want = degradation.cable_ok(topology.cable_of(link)) &&
                        degradation.node_ok(edge.src) &&
                        degradation.node_ok(edge.dst);
      if (want == (enabled[link] != 0)) continue;
      enabled[link] = want ? 1 : 0;
      if (want) {
        net.bring_link_up(link);
      } else {
        const flit::Network::FaultStats stats = net.take_link_down(link);
        pending_dropped += stats.dropped;
        pending_rerouted += stats.rerouted;
      }
    }
  };

  const auto apply_due = [&](std::uint64_t boundary) {
    bool topo_changed = false;
    while (next_event < stamps.size() &&
           warmup + stamps[next_event].cycle <= boundary) {
      const fm::EventRecord record =
          manager_->apply(stamps[next_event].event);
      if (!record.ok) {
        ++result.event_errors;
      } else if (record.event.topology_event()) {
        topo_changed = true;
      }
      pending.push_back(record);
      ++next_event;
    }
    if (topo_changed) sync_network();
  };

  net.run_until(warmup);
  net.harvest_window();  // warmup transient, discarded
  apply_due(warmup);     // events stamped @0 fire as measurement opens

  for (const std::uint64_t boundary : boundaries) {
    Epoch epoch;
    epoch.start_cycle = net.now();
    epoch.records = std::move(pending);
    pending.clear();
    epoch.dropped_at_swap = std::exchange(pending_dropped, 0);
    epoch.rerouted_at_swap = std::exchange(pending_rerouted, 0);
    net.run_until(boundary);
    epoch.window = net.harvest_window();
    result.epochs.push_back(std::move(epoch));
    apply_due(boundary);
  }
  LMPR_ASSERT(next_event == stamps.size());
  result.overall = net.finalize();
  result.fm_summary = manager_->summary();
  result.selector = net.selector_stats();

  // Recovery analysis over the epoch means.
  bool any_topo = false;
  for (const fm::TimedEvent& stamp : stamps) {
    if (!stamp.event.topology_event()) continue;
    const std::uint64_t cycle = warmup + stamp.cycle;
    if (!any_topo) result.first_event_cycle = cycle;
    result.last_event_cycle = cycle;
    any_topo = true;
  }
  if (!any_topo) {
    result.recovered = true;
    result.ok = true;
    return result;
  }
  double baseline_sum = 0.0;
  std::size_t baseline_windows = 0;
  for (const Epoch& epoch : result.epochs) {
    if (epoch.window.messages_delivered == 0) continue;
    if (epoch.window.end_cycle <= result.first_event_cycle) {
      baseline_sum += epoch.window.mean_message_delay;
      ++baseline_windows;
    } else {
      result.peak_delay =
          std::max(result.peak_delay, epoch.window.mean_message_delay);
    }
  }
  result.baseline_delay = baseline_windows > 0
                              ? baseline_sum /
                                    static_cast<double>(baseline_windows)
                              : result.overall.message_delay.mean();
  for (const Epoch& epoch : result.epochs) {
    if (epoch.window.start_cycle < result.last_event_cycle) continue;
    if (epoch.window.messages_delivered == 0) continue;
    if (epoch.window.mean_message_delay <=
        config_.recovery_tolerance * result.baseline_delay) {
      result.recovered = true;
      result.recovery_cycles = epoch.window.end_cycle -
                               result.last_event_cycle;
      break;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace lmpr::replay
