// Dynamic fault replay: drives the flit-level simulator (flit::Network in
// LFT mode) from a fabric-manager event script (fm/events.hpp), so that
// fault handling is evaluated on LIVE traffic instead of the static
// post-event analyses `lmpr fm` reports.
//
// The engine owns an fm::FabricManager and a flit::Network routed by the
// manager's tables.  A parsed script is cycle-stamped (fm::stamp_events,
// offsets relative to the measurement-window start) and merged with a
// fixed metric cadence into one boundary timeline.  At every boundary the
// simulation stops on a cycle edge, the closing epoch's windowed metrics
// are harvested, and the events due are applied:
//
//   * the manager ingests the event and incrementally repairs its LFTs;
//   * the repaired tables are swapped into the router atomically
//     (Network::set_tables -- every kernel routes by the new tables from
//     the next cycle on);
//   * dead switches are flagged and every directed link whose cable or
//     endpoint died is taken down, which per SimConfig::drop_policy drops
//     or re-homes the packets caught on it (healed links come back up).
//
// The per-epoch WindowMetrics expose the transient the paper's
// deployment story cares about: the delay spike when a cable dies, the
// packets lost before the swap, and how many windows pass before delay
// returns to within recovery_tolerance of the pre-fault baseline --
// which is how replay_cable_storm compares repair policies in recovery
// time rather than static max-load.  See DESIGN.md §11.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flit/config.hpp"
#include "flit/metrics.hpp"
#include "flit/network.hpp"
#include "fm/events.hpp"
#include "fm/fabric_manager.hpp"
#include "topology/spec.hpp"

namespace lmpr::replay {

struct ReplayConfig {
  /// Traffic + fault-handling knobs.  window_metrics is forced to true
  /// (epochs need the window accumulators).  routing_mode and select
  /// pass through: `--routing adaptive` replays against the all-ports
  /// adaptive baseline, `--select adaptive_*` replays with the variant
  /// selector, which consults the post-swap tables only (it reads the
  /// router's current fabric::Tables, the ones set_tables just
  /// installed, and never engages on a masked entry).
  flit::SimConfig sim;
  /// Fabric-manager knobs (path limit, LID layout, repair policy).
  fm::FmConfig fm;
  /// Metric cadence: an epoch boundary every this many cycles (event
  /// stamps insert extra boundaries, so epochs are at most this long).
  std::uint64_t window_cycles = 2'000;
  /// An epoch counts as recovered when its mean message delay is within
  /// this factor of the pre-fault baseline.
  double recovery_tolerance = 1.25;
};

/// One epoch of the replayed run: the events fired at its start boundary
/// (with the manager's repair records) and the windowed metrics
/// accumulated until the next boundary.
struct Epoch {
  std::uint64_t start_cycle = 0;
  /// Events applied on this epoch's start edge, in script order.
  std::vector<fm::EventRecord> records;
  /// Packets the start-edge link kills severed / salvaged
  /// (Network::FaultStats, summed over the links taken down).
  std::uint64_t dropped_at_swap = 0;
  std::uint64_t rerouted_at_swap = 0;
  flit::WindowMetrics window;
};

struct ReplayResult {
  bool ok = false;
  std::string error;

  std::vector<Epoch> epochs;
  flit::SimMetrics overall;
  fm::FmSummary fm_summary;
  std::size_t event_errors = 0;  ///< events the manager rejected
  /// Adaptive variant-selection counters (SimConfig::select; zero under
  /// oblivious).  Kernel-independent: the kernel_diff harness asserts
  /// they replay bit-identically across all three kernels.
  adaptive::SelectorStats selector;

  // Recovery analysis (only meaningful when the script has topology
  // events; `recovered` is trivially true otherwise).
  double baseline_delay = 0.0;  ///< mean epoch delay before the first event
  double peak_delay = 0.0;      ///< worst epoch mean delay at/after it
  std::uint64_t first_event_cycle = 0;  ///< absolute cycles
  std::uint64_t last_event_cycle = 0;
  bool recovered = false;
  /// Cycles from the last topology event to the end of the first epoch
  /// back within recovery_tolerance * baseline_delay.
  std::uint64_t recovery_cycles = 0;
};

class ReplayEngine {
 public:
  /// Recognizes the spec's fabric and installs the healthy tables; on
  /// failure ok() is false and run() refuses to start.
  ReplayEngine(const topo::XgftSpec& spec, const ReplayConfig& config);
  /// Same, from a raw cable list: recognition decides whether the fabric
  /// is managed as an XGFT or (with config.fm.allow_generic) as a
  /// generic graph.
  ReplayEngine(const discovery::RawFabric& fabric,
               const ReplayConfig& config);

  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }
  const fm::FabricManager& manager() const noexcept { return *manager_; }
  const ReplayConfig& config() const noexcept { return config_; }

  /// Replays the script over live traffic.  One-shot: the manager's
  /// degradation state carries the script's events afterwards, so a
  /// second run would start from the degraded fabric.
  ReplayResult run(const fm::EventScript& script);

 private:
  ReplayConfig config_;
  std::string error_;
  std::unique_ptr<fm::FabricManager> manager_;
};

}  // namespace lmpr::replay
