#include "flow/oload.hpp"

#include <limits>
#include <vector>

#include "util/contracts.hpp"

namespace lmpr::flow {

OloadResult oload(const topo::Xgft& xgft, const TrafficMatrix& tm) {
  LMPR_EXPECTS(tm.num_hosts() == xgft.num_hosts());
  OloadResult result;
  // For each subtree height k = 0 .. h-1 accumulate per-subtree ingress and
  // egress, then divide by the cut width TL(k).
  for (std::uint32_t k = 0; k < xgft.height(); ++k) {
    const std::uint64_t count = xgft.num_subtrees(k);
    std::vector<double> out(static_cast<std::size_t>(count), 0.0);
    std::vector<double> in(static_cast<std::size_t>(count), 0.0);
    for (const Demand& demand : tm.demands()) {
      if (demand.amount == 0.0) continue;
      const std::uint64_t src_tree = xgft.subtree_of(demand.src, k);
      const std::uint64_t dst_tree = xgft.subtree_of(demand.dst, k);
      if (src_tree == dst_tree) continue;
      out[static_cast<std::size_t>(src_tree)] += demand.amount;
      in[static_cast<std::size_t>(dst_tree)] += demand.amount;
    }
    const double width = static_cast<double>(xgft.spec().boundary_links(k));
    for (std::uint64_t st = 0; st < count; ++st) {
      const double mt = std::max(out[static_cast<std::size_t>(st)],
                                 in[static_cast<std::size_t>(st)]);
      const double bound = mt / width;
      if (bound > result.value) {
        result.value = bound;
        result.cut_height = k;
        result.cut_subtree = st;
      }
    }
  }
  return result;
}

double perf_ratio(double max_load, double oload_value) {
  LMPR_EXPECTS(max_load >= 0.0 && oload_value >= 0.0);
  if (oload_value == 0.0) {
    return max_load == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return max_load / oload_value;
}

}  // namespace lmpr::flow
