// Traffic matrices and the workload generators used by the paper's
// flow-level evaluation (Section 5) plus the adversarial pattern from the
// Theorem 2 lower-bound proof.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topology/xgft.hpp"
#include "util/rng.hpp"

namespace lmpr::flow {

/// One nonzero traffic-matrix entry: `amount` units of demand src -> dst.
struct Demand {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  double amount = 0.0;
};

/// Sparse traffic matrix.  Duplicate (src, dst) demands are allowed and
/// accumulate during evaluation.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::uint64_t num_hosts) : num_hosts_(num_hosts) {}

  std::uint64_t num_hosts() const noexcept { return num_hosts_; }
  std::span<const Demand> demands() const noexcept { return demands_; }
  std::size_t size() const noexcept { return demands_.size(); }

  void add(std::uint64_t src, std::uint64_t dst, double amount);

  /// Sum of all demand amounts.
  double total() const noexcept;

  // --- generators ---------------------------------------------------------

  /// tm[i][perm[i]] = amount.  Fixed points (i == perm[i]) are legal and
  /// load-free, matching the paper's "possibly itself" permutations.
  static TrafficMatrix permutation(std::uint64_t num_hosts,
                                   std::span<const std::size_t> perm,
                                   double amount = 1.0);

  /// Uniformly random permutation (the paper's "permutation traffic").
  static TrafficMatrix random_permutation(std::uint64_t num_hosts,
                                          util::Rng& rng);

  /// Dense uniform traffic: every host sends rate/(N-1) to every other
  /// host.  Dense in memory -- use for tests and small instances.
  static TrafficMatrix uniform(std::uint64_t num_hosts, double rate = 1.0);

  /// Cyclic shift pattern: i -> (i + offset) mod N (Zahavi et al.'s
  /// shift-all-to-all building block).
  static TrafficMatrix shift(std::uint64_t num_hosts, std::uint64_t offset,
                             double amount = 1.0);

  /// Bit-reversal permutation (classic adversarial pattern for trees);
  /// num_hosts must be a power of two.
  static TrafficMatrix bit_reversal(std::uint64_t num_hosts,
                                    double amount = 1.0);

  /// Hotspot: every other host sends `amount` to `target`.
  static TrafficMatrix hotspot(std::uint64_t num_hosts, std::uint64_t target,
                               double amount = 1.0);

 private:
  std::uint64_t num_hosts_;
  std::vector<Demand> demands_;
};

/// Theorem 2's adversarial pattern for d-mod-k: every host of the first
/// height-(h-1) subtree sends one unit to a destination that is a multiple
/// of W = prod(w_i), forcing d-mod-k to emit all of it through ONE upward
/// link while UMULTI spreads it over all W of them.
///
/// Throws std::invalid_argument when the topology is too small to host the
/// construction (needs roughly m_h >= prod(w_i) worth of headroom; see
/// adversarial_dmodk_fits).
TrafficMatrix adversarial_dmodk_traffic(const topo::Xgft& xgft);

/// True when adversarial_dmodk_traffic() can be constructed on this
/// topology with all destinations valid and in distinct height-(h-1)
/// subtrees.
bool adversarial_dmodk_fits(const topo::XgftSpec& spec);

/// A compact topology family on which the construction always fits and
/// yields PERF(d-mod-k) >= prod(w_i) = `spread`^(h-1) ... handy for the
/// Theorem 2 bench: XGFT(h; s,..,s, s*spread_total; 1, s,..,s).
topo::XgftSpec adversarial_dmodk_topology(std::size_t height,
                                          std::uint32_t spread);

}  // namespace lmpr::flow
