#include "flow/collectives.hpp"

#include <bit>

#include "util/contracts.hpp"

namespace lmpr::flow {

Collective shift_all_to_all(std::uint64_t num_hosts) {
  LMPR_EXPECTS(num_hosts >= 2);
  Collective collective{"shift-all-to-all", {}};
  collective.phases.reserve(static_cast<std::size_t>(num_hosts - 1));
  for (std::uint64_t offset = 1; offset < num_hosts; ++offset) {
    collective.phases.push_back(
        CollectivePhase{TrafficMatrix::shift(num_hosts, offset), 1});
  }
  return collective;
}

Collective recursive_doubling(std::uint64_t num_hosts) {
  LMPR_EXPECTS(num_hosts >= 2 && std::has_single_bit(num_hosts));
  Collective collective{"recursive-doubling", {}};
  for (std::uint64_t bit = 1; bit < num_hosts; bit <<= 1) {
    TrafficMatrix tm(num_hosts);
    for (std::uint64_t i = 0; i < num_hosts; ++i) {
      tm.add(i, i ^ bit, 1.0);
    }
    collective.phases.push_back(CollectivePhase{std::move(tm), 1});
  }
  return collective;
}

Collective ring_allreduce(std::uint64_t num_hosts) {
  LMPR_EXPECTS(num_hosts >= 2);
  Collective collective{"ring-allreduce", {}};
  collective.phases.push_back(CollectivePhase{
      TrafficMatrix::shift(num_hosts, 1), 2 * (num_hosts - 1)});
  return collective;
}

Collective stencil3d(std::uint64_t nx, std::uint64_t ny, std::uint64_t nz) {
  LMPR_EXPECTS(nx >= 2 && ny >= 2 && nz >= 2);
  const std::uint64_t num_hosts = nx * ny * nz;
  Collective collective{"stencil-3d", {}};
  auto host_of = [&](std::uint64_t x, std::uint64_t y, std::uint64_t z) {
    return x + nx * (y + ny * z);
  };
  struct Dir {
    std::int64_t dx, dy, dz;
  };
  const Dir dirs[] = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
                      {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
  for (const Dir& dir : dirs) {
    TrafficMatrix tm(num_hosts);
    for (std::uint64_t z = 0; z < nz; ++z) {
      for (std::uint64_t y = 0; y < ny; ++y) {
        for (std::uint64_t x = 0; x < nx; ++x) {
          const std::uint64_t tx =
              (x + static_cast<std::uint64_t>(dir.dx + static_cast<std::int64_t>(nx))) % nx;
          const std::uint64_t ty =
              (y + static_cast<std::uint64_t>(dir.dy + static_cast<std::int64_t>(ny))) % ny;
          const std::uint64_t tz =
              (z + static_cast<std::uint64_t>(dir.dz + static_cast<std::int64_t>(nz))) % nz;
          tm.add(host_of(x, y, z), host_of(tx, ty, tz), 1.0);
        }
      }
    }
    collective.phases.push_back(CollectivePhase{std::move(tm), 1});
  }
  return collective;
}

Collective transpose(std::uint64_t rows, std::uint64_t cols) {
  LMPR_EXPECTS(rows >= 1 && cols >= 1);
  const std::uint64_t num_hosts = rows * cols;
  TrafficMatrix tm(num_hosts);
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      tm.add(r * cols + c, c * rows + r, 1.0);
    }
  }
  Collective collective{"transpose", {}};
  collective.phases.push_back(CollectivePhase{std::move(tm), 1});
  return collective;
}

CollectiveCost evaluate_collective(const topo::Xgft& xgft,
                                   const Collective& collective,
                                   route::Heuristic heuristic,
                                   std::size_t k_paths, util::Rng& rng) {
  CollectiveCost cost;
  LoadEvaluator evaluator(xgft);
  for (const CollectivePhase& phase : collective.phases) {
    LMPR_EXPECTS(phase.tm.num_hosts() == xgft.num_hosts());
    const double load =
        evaluator.evaluate(phase.tm, heuristic, k_paths, rng).max_load;
    const double optimal = oload(xgft, phase.tm).value;
    cost.time += static_cast<double>(phase.repeat) * load;
    cost.optimal_time += static_cast<double>(phase.repeat) * optimal;
  }
  cost.slowdown = cost.optimal_time > 0.0 ? cost.time / cost.optimal_time
                                          : 1.0;
  return cost;
}

}  // namespace lmpr::flow
