#include "flow/traffic_aware.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/path_index.hpp"
#include "util/contracts.hpp"

namespace lmpr::flow {

namespace {

/// Links of every candidate path of one SD pair, materialized once.
struct CandidateSet {
  std::vector<std::vector<topo::LinkId>> paths;
};

CandidateSet candidates_for(const topo::Xgft& xgft, std::uint64_t src,
                            std::uint64_t dst) {
  CandidateSet set;
  const std::uint64_t total = xgft.num_shortest_paths(src, dst);
  set.paths.resize(static_cast<std::size_t>(total));
  for (std::uint64_t index = 0; index < total; ++index) {
    route::append_path_links(xgft, src, dst, index,
                             set.paths[static_cast<std::size_t>(index)]);
  }
  return set;
}

/// Picks `k` paths greedily (repetition allowed across shares but not
/// within one selection round) and applies fraction `share` each,
/// mutating `loads`.  Returns the chosen path indices.
std::vector<std::size_t> place_demand(const CandidateSet& candidates,
                                      double share, std::size_t k,
                                      std::vector<double>& loads) {
  const std::size_t total = candidates.paths.size();
  const std::size_t take = std::min(k, total);
  std::vector<bool> used(total, false);
  std::vector<std::size_t> chosen;
  chosen.reserve(take);
  for (std::size_t round = 0; round < take; ++round) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best = total;
    for (std::size_t p = 0; p < total; ++p) {
      if (used[p]) continue;
      double cost = 0.0;
      for (const topo::LinkId link : candidates.paths[p]) {
        cost = std::max(cost, loads[link] + share);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = p;
      }
    }
    LMPR_ASSERT(best < total);
    used[best] = true;
    chosen.push_back(best);
    for (const topo::LinkId link : candidates.paths[best]) {
      loads[link] += share;
    }
  }
  return chosen;
}

void unplace(const CandidateSet& candidates,
             const std::vector<std::size_t>& chosen, double share,
             std::vector<double>& loads) {
  for (const std::size_t p : chosen) {
    for (const topo::LinkId link : candidates.paths[p]) {
      loads[link] -= share;
    }
  }
}

double max_of(const std::vector<double>& loads) {
  double best = 0.0;
  for (const double load : loads) best = std::max(best, load);
  return best;
}

}  // namespace

TrafficAwareResult traffic_aware_kpath(const topo::Xgft& xgft,
                                       const TrafficMatrix& tm,
                                       const TrafficAwareConfig& config) {
  LMPR_EXPECTS(config.k_paths >= 1);
  LMPR_EXPECTS(tm.num_hosts() == xgft.num_hosts());

  std::vector<double> loads(static_cast<std::size_t>(xgft.num_links()), 0.0);
  struct Placed {
    CandidateSet candidates;
    std::vector<std::size_t> chosen;
    double share = 0.0;
  };
  std::vector<Placed> placements;
  placements.reserve(tm.size());

  TrafficAwareResult result;
  // Initial greedy placement in matrix order.
  for (const Demand& demand : tm.demands()) {
    if (demand.src == demand.dst || demand.amount == 0.0) continue;
    Placed placed;
    placed.candidates = candidates_for(xgft, demand.src, demand.dst);
    const std::size_t take =
        std::min(config.k_paths, placed.candidates.paths.size());
    placed.share = demand.amount / static_cast<double>(take);
    placed.chosen =
        place_demand(placed.candidates, placed.share, config.k_paths, loads);
    placements.push_back(std::move(placed));
  }

  // Rip-up and re-route refinement.
  for (std::size_t pass = 0; pass < config.refine_passes; ++pass) {
    bool improved = false;
    for (Placed& placed : placements) {
      const double before = max_of(loads);
      unplace(placed.candidates, placed.chosen, placed.share, loads);
      const auto rerouted =
          place_demand(placed.candidates, placed.share, config.k_paths, loads);
      if (rerouted != placed.chosen) {
        ++result.reroutes;
        placed.chosen = rerouted;
        improved |= (max_of(loads) < before - 1e-12);
      }
    }
    if (!improved) break;
  }

  result.max_load = max_of(loads);
  return result;
}

}  // namespace lmpr::flow
