#include "flow/resilience.hpp"

#include <vector>

#include "core/path_index.hpp"
#include "util/contracts.hpp"

namespace lmpr::flow {

ResilienceResult measure_resilience(const topo::Xgft& xgft,
                                    const ResilienceConfig& config) {
  LMPR_EXPECTS(config.cable_failure_probability >= 0.0 &&
               config.cable_failure_probability <= 1.0);
  LMPR_EXPECTS(config.trials >= 1);
  util::Rng rng{config.seed};
  const std::uint64_t hosts = xgft.num_hosts();
  const std::uint64_t cables = xgft.num_cables();

  ResilienceResult result;
  result.connectivity = 0.0;
  result.surviving_paths = 0.0;
  std::vector<bool> cable_dead(static_cast<std::size_t>(cables));
  std::vector<topo::LinkId> scratch;

  if (config.record_details) result.trials.reserve(config.trials);
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    ResilienceTrial* detail = nullptr;
    if (config.record_details) {
      result.trials.emplace_back();
      detail = &result.trials.back();
    }
    std::size_t failed = 0;
    for (std::uint64_t c = 0; c < cables; ++c) {
      const bool dead = rng.uniform01() < config.cable_failure_probability;
      cable_dead[static_cast<std::size_t>(c)] = dead;
      failed += dead;
      if (dead && detail != nullptr) detail->failed_cables.push_back(c);
    }
    result.failed_cables += static_cast<double>(failed);

    auto path_alive = [&](std::uint64_t s, std::uint64_t d,
                          std::uint64_t index) {
      scratch.clear();
      route::append_path_links(xgft, s, d, index, scratch);
      for (const topo::LinkId link : scratch) {
        if (cable_dead[static_cast<std::size_t>(xgft.cable_of(link))]) {
          return false;
        }
      }
      return true;
    };

    std::uint64_t pairs = 0;
    std::uint64_t connected = 0;
    double surviving = 0.0;
    auto account_pair = [&](std::uint64_t s, std::uint64_t d) {
      const auto indices = route::select_path_indices(
          xgft, s, d, config.k_paths, config.heuristic, rng);
      std::size_t alive = 0;
      for (const std::uint64_t index : indices) {
        alive += path_alive(s, d, index);
      }
      ++pairs;
      connected += (alive > 0);
      if (alive == 0 && detail != nullptr) {
        detail->disconnected.push_back({s, d});
      }
      surviving += static_cast<double>(alive) /
                   static_cast<double>(indices.size());
    };

    if (config.pair_samples == 0) {
      for (std::uint64_t s = 0; s < hosts; ++s) {
        for (std::uint64_t d = 0; d < hosts; ++d) {
          if (s != d) account_pair(s, d);
        }
      }
    } else {
      for (std::size_t i = 0; i < config.pair_samples; ++i) {
        const std::uint64_t s = rng.below(hosts);
        std::uint64_t d = rng.below(hosts - 1);
        if (d >= s) ++d;
        account_pair(s, d);
      }
    }
    const double fraction = pairs > 0
                                ? static_cast<double>(connected) /
                                      static_cast<double>(pairs)
                                : 1.0;
    result.connectivity += fraction;
    result.worst_connectivity = std::min(result.worst_connectivity, fraction);
    result.surviving_paths += pairs > 0 ? surviving / static_cast<double>(pairs)
                                        : 1.0;
  }
  const double trials = static_cast<double>(config.trials);
  result.connectivity /= trials;
  result.surviving_paths /= trials;
  result.failed_cables /= trials;
  return result;
}

}  // namespace lmpr::flow
