#include "flow/worst_case.hpp"

#include <vector>

#include "flow/traffic.hpp"
#include "util/rng.hpp"

namespace lmpr::flow {

namespace {

struct Evaluation {
  double perf = 0.0;
  double max_load = 0.0;
  double oload_value = 0.0;
};

Evaluation evaluate_perm(const topo::Xgft& xgft, LoadEvaluator& evaluator,
                         const std::vector<std::size_t>& perm,
                         const WorstCaseConfig& config) {
  const auto tm = TrafficMatrix::permutation(xgft.num_hosts(), perm);
  // Fixed per-evaluation RNG: randomized heuristics see a reproducible
  // path draw, so the search objective is a deterministic function of the
  // permutation.
  util::Rng route_rng{config.seed ^ 0xabcdef123456789ULL};
  Evaluation eval;
  eval.max_load =
      evaluator.evaluate(tm, config.heuristic, config.k_paths, route_rng)
          .max_load;
  eval.oload_value = oload(xgft, tm).value;
  eval.perf = perf_ratio(eval.max_load, eval.oload_value);
  return eval;
}

struct RestartOutcome {
  Evaluation best;
  std::vector<std::size_t> perm;
  std::size_t evaluations = 0;
};

RestartOutcome run_restart(const topo::Xgft& xgft,
                           const WorstCaseConfig& config,
                           std::size_t restart) {
  std::uint64_t state =
      config.seed ^ (0x9e3779b97f4a7c15ULL * (restart + 1));
  util::Rng rng{util::splitmix64(state)};
  LoadEvaluator evaluator(xgft);
  const auto hosts = static_cast<std::size_t>(xgft.num_hosts());

  RestartOutcome outcome;
  outcome.perm = rng.permutation(hosts);
  outcome.best = evaluate_perm(xgft, evaluator, outcome.perm, config);
  ++outcome.evaluations;
  for (std::size_t step = 0; step < config.steps; ++step) {
    const std::size_t a = static_cast<std::size_t>(rng.below(hosts));
    std::size_t b = static_cast<std::size_t>(rng.below(hosts - 1));
    if (b >= a) ++b;
    std::swap(outcome.perm[a], outcome.perm[b]);
    const Evaluation candidate =
        evaluate_perm(xgft, evaluator, outcome.perm, config);
    ++outcome.evaluations;
    if (candidate.perf >= outcome.best.perf) {
      outcome.best = candidate;  // accept improvements and plateau moves
    } else {
      std::swap(outcome.perm[a], outcome.perm[b]);  // revert
    }
  }
  return outcome;
}

}  // namespace

WorstCaseResult search_worst_permutation(const topo::Xgft& xgft,
                                         const WorstCaseConfig& config) {
  std::vector<RestartOutcome> outcomes(config.restarts);
  auto body = [&](std::size_t r) { outcomes[r] = run_restart(xgft, config, r); };
  if (config.pool != nullptr) {
    config.pool->parallel_for(config.restarts, body);
  } else {
    for (std::size_t r = 0; r < config.restarts; ++r) body(r);
  }

  WorstCaseResult result;
  for (const RestartOutcome& outcome : outcomes) {
    result.evaluations += outcome.evaluations;
    if (outcome.best.perf > result.worst_perf) {
      result.worst_perf = outcome.best.perf;
      result.worst_max_load = outcome.best.max_load;
      result.worst_oload = outcome.best.oload_value;
      result.worst_perm = outcome.perm;
    }
  }
  return result;
}

}  // namespace lmpr::flow
