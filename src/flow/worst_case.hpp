// Adversarial search for bad permutations: how far from optimal can a
// routing be driven by a worst-case permutation?  The paper's oblivious
// performance ratio (Section 3.2) maximizes PERF(r, TM) over ALL traffic
// matrices; restricted to permutation traffic this becomes a discrete
// search problem, attacked here with seeded random-restart hill climbing
// (mutation: swap two destinations; plateau moves accepted).
//
// For d-mod-k the search should approach the analytic worst case (the
// Theorem 2 style congestion, bounded by min(m_1*..*m_{h-1}, w_1*..*w_h)
// on one uplink); for limited multi-path routing it demonstrates that
// increasing K also shrinks the WORST case, not just the average.
#pragma once

#include <cstdint>
#include <vector>

#include "core/heuristics.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "topology/xgft.hpp"
#include "util/thread_pool.hpp"

namespace lmpr::flow {

struct WorstCaseConfig {
  route::Heuristic heuristic = route::Heuristic::kDModK;
  std::size_t k_paths = 1;
  /// Hill-climbing steps per restart.
  std::size_t steps = 2000;
  std::size_t restarts = 4;
  std::uint64_t seed = 17;
  /// Optional worker pool: restarts are independent (restart r derives
  /// its RNG from (seed, r)), so results are identical for any worker
  /// count.
  util::ThreadPool* pool = nullptr;
};

struct WorstCaseResult {
  /// Best (largest) performance ratio found.
  double worst_perf = 0.0;
  /// Max link load / optimal load of the worst permutation found.
  double worst_max_load = 0.0;
  double worst_oload = 0.0;
  /// The offending permutation (worst_perm[i] is host i's destination).
  std::vector<std::size_t> worst_perm;
  /// Total routing evaluations spent.
  std::size_t evaluations = 0;
};

WorstCaseResult search_worst_permutation(const topo::Xgft& xgft,
                                         const WorstCaseConfig& config);

}  // namespace lmpr::flow
