// Fault-tolerance side benefit of limited multi-path routing: with K
// link-diverse paths installed per SD pair, a random cable failure only
// disconnects a pair when it hits ALL K paths.  This module measures, for
// a sampled failure pattern (each cable fails independently with a given
// probability, both directed links dying together):
//
//   * connectivity  -- fraction of SD pairs with >= 1 surviving path in
//                      their installed set (no re-routing; the paper's
//                      static-table setting);
//   * surviving paths -- mean surviving fraction of each pair's paths.
//
// The disjoint heuristic's link-diversity should translate directly into
// higher survival than shift-1's top-level-only diversity at equal K.
#pragma once

#include <cstdint>
#include <vector>

#include "core/heuristics.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"

namespace lmpr::flow {

struct ResilienceConfig {
  route::Heuristic heuristic = route::Heuristic::kDisjoint;
  std::size_t k_paths = 4;
  /// Independent failure probability per CABLE (both directions fail).
  /// 1.0 is allowed (every cable dies: the degenerate all-fail pattern).
  double cable_failure_probability = 0.02;
  /// Failure patterns sampled.
  std::size_t trials = 20;
  /// SD pairs sampled per trial (0 = all ordered pairs; beware N^2).
  std::size_t pair_samples = 2000;
  std::uint64_t seed = 23;
  /// Record per-trial failure patterns and disconnected-pair IDENTITIES
  /// in ResilienceResult::trials (ground truth for the fabric-manager
  /// tests).  Off by default: the vectors can dwarf the aggregates.
  bool record_details = false;
};

/// One sampled (s, d) pair that lost every installed path in a trial.
struct DisconnectedPair {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  friend bool operator==(const DisconnectedPair&,
                         const DisconnectedPair&) = default;
};

/// Per-trial detail, recorded only when config.record_details is set.
struct ResilienceTrial {
  std::vector<std::uint64_t> failed_cables;  ///< cable ids that died
  std::vector<DisconnectedPair> disconnected;
};

struct ResilienceResult {
  /// Mean over trials of the connected-pair fraction.
  double connectivity = 1.0;
  /// Worst trial's connected-pair fraction.
  double worst_connectivity = 1.0;
  /// Mean surviving fraction of installed paths per pair.
  double surviving_paths = 1.0;
  /// Mean number of failed cables per trial.
  double failed_cables = 0.0;
  /// One entry per trial when config.record_details was set, else empty.
  std::vector<ResilienceTrial> trials;
};

ResilienceResult measure_resilience(const topo::Xgft& xgft,
                                    const ResilienceConfig& config);

}  // namespace lmpr::flow
