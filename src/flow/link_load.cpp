#include "flow/link_load.hpp"

#include <algorithm>

#include "core/path_index.hpp"
#include "util/contracts.hpp"

namespace lmpr::flow {

LoadEvaluator::LoadEvaluator(const topo::Topology& topology)
    : topo_(&topology), loads_(topology.num_links(), 0.0) {}

void LoadEvaluator::reset() {
  std::fill(loads_.begin(), loads_.end(), 0.0);
}

LoadResult LoadEvaluator::finish() {
  LoadResult result;
  result.max_up_load_per_level.assign(topo_->num_levels(), 0.0);
  result.max_down_load_per_level.assign(topo_->num_levels(), 0.0);
  for (std::size_t id = 0; id < loads_.size(); ++id) {
    const double load = loads_[id];
    if (load > result.max_load) {
      result.max_load = load;
      result.argmax = static_cast<topo::LinkId>(id);
    }
    const topo::Link& link = topo_->link(static_cast<topo::LinkId>(id));
    auto& per_level = link.up ? result.max_up_load_per_level
                              : result.max_down_load_per_level;
    per_level[link.level] = std::max(per_level[link.level], load);
  }
  return result;
}

namespace {

/// Heuristics that consume the RNG; their path picks must not be memoized
/// (a cache hit would skip draws and shift every later sample).
bool is_randomized(route::Heuristic heuristic) {
  return heuristic == route::Heuristic::kRandom ||
         heuristic == route::Heuristic::kRandomSingle;
}

/// Link budget for the path cache: ~4M LinkIds (16 MiB).  Enough for the
/// all-pairs flows of the paper-scale topologies; beyond it misses fall
/// back to uncached evaluation instead of growing without bound.
constexpr std::size_t kCacheLinkBudget = std::size_t{1} << 22;

}  // namespace

void LoadEvaluator::set_path_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  cache_valid_ = false;
  cache_spans_.clear();
  cache_links_.clear();
  cache_links_.shrink_to_fit();
}

const LoadEvaluator::FlowSpan* LoadEvaluator::cached_flow(
    std::uint64_t src, std::uint64_t dst, route::Heuristic heuristic,
    std::size_t k_paths) {
  if (!cache_valid_ || heuristic != cache_heuristic_ ||
      k_paths != cache_k_) {
    cache_spans_.clear();
    cache_links_.clear();
    cache_heuristic_ = heuristic;
    cache_k_ = k_paths;
    cache_valid_ = true;
  }
  const std::uint64_t flow = src * topo_->num_hosts() + dst;
  const auto hit = cache_spans_.find(flow);
  if (hit != cache_spans_.end()) return &hit->second;
  if (cache_links_.size() >= kCacheLinkBudget) return nullptr;

  // Miss: derive the paths once (deterministic heuristics only, so the
  // dummy RNG is never consulted) and append their links to the arena.
  util::Rng unused{0};
  const auto indices = route::select_path_indices(*topo_, src, dst, k_paths,
                                                  heuristic, unused);
  FlowSpan span;
  span.begin = cache_links_.size();
  span.num_paths = static_cast<std::uint32_t>(indices.size());
  for (const std::uint64_t index : indices) {
    route::append_path_links(*topo_, src, dst, index, cache_links_);
  }
  span.length =
      static_cast<std::uint32_t>(cache_links_.size() - span.begin);
  return &cache_spans_.emplace(flow, span).first->second;
}

LoadResult LoadEvaluator::evaluate(const TrafficMatrix& tm,
                                   route::Heuristic heuristic,
                                   std::size_t k_paths, util::Rng& rng) {
  LMPR_EXPECTS(tm.num_hosts() == topo_->num_hosts());
  reset();
  const bool use_cache = cache_enabled_ && !is_randomized(heuristic);
  for (const Demand& demand : tm.demands()) {
    if (demand.src == demand.dst || demand.amount == 0.0) continue;
    if (use_cache) {
      const FlowSpan* span =
          cached_flow(demand.src, demand.dst, heuristic, k_paths);
      if (span != nullptr) {
        // Same links in the same order as the uncached derivation, so
        // the floating-point accumulation is bit-identical.
        const double fraction =
            demand.amount / static_cast<double>(span->num_paths);
        const topo::LinkId* links = cache_links_.data() + span->begin;
        for (std::uint32_t i = 0; i < span->length; ++i) {
          loads_[links[i]] += fraction;
        }
        continue;
      }
    }
    const auto indices = route::select_path_indices(
        *topo_, demand.src, demand.dst, k_paths, heuristic, rng);
    const double fraction =
        demand.amount / static_cast<double>(indices.size());
    for (const std::uint64_t index : indices) {
      scratch_links_.clear();
      route::append_path_links(*topo_, demand.src, demand.dst, index,
                               scratch_links_);
      for (const topo::LinkId link : scratch_links_) {
        loads_[link] += fraction;
      }
    }
  }
  return finish();
}

LoadResult LoadEvaluator::evaluate(const TrafficMatrix& tm,
                                   const route::RouteTable& table) {
  LMPR_EXPECTS(tm.num_hosts() == topo_->num_hosts());
  reset();
  for (const Demand& demand : tm.demands()) {
    if (demand.src == demand.dst || demand.amount == 0.0) continue;
    const auto paths = table.paths(demand.src, demand.dst);
    const double fraction = demand.amount / static_cast<double>(paths.size());
    for (const route::Path& path : paths) {
      for (const topo::LinkId link : path.links) {
        loads_[link] += fraction;
      }
    }
  }
  return finish();
}

}  // namespace lmpr::flow
