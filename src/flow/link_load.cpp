#include "flow/link_load.hpp"

#include <algorithm>

#include "core/path_index.hpp"
#include "util/contracts.hpp"

namespace lmpr::flow {

LoadEvaluator::LoadEvaluator(const topo::Xgft& xgft)
    : xgft_(&xgft), loads_(xgft.num_links(), 0.0) {}

void LoadEvaluator::reset() {
  std::fill(loads_.begin(), loads_.end(), 0.0);
}

LoadResult LoadEvaluator::finish() {
  LoadResult result;
  result.max_up_load_per_level.assign(xgft_->height(), 0.0);
  result.max_down_load_per_level.assign(xgft_->height(), 0.0);
  for (std::size_t id = 0; id < loads_.size(); ++id) {
    const double load = loads_[id];
    if (load > result.max_load) {
      result.max_load = load;
      result.argmax = static_cast<topo::LinkId>(id);
    }
    const topo::Link& link = xgft_->link(static_cast<topo::LinkId>(id));
    auto& per_level = link.up ? result.max_up_load_per_level
                              : result.max_down_load_per_level;
    per_level[link.level] = std::max(per_level[link.level], load);
  }
  return result;
}

LoadResult LoadEvaluator::evaluate(const TrafficMatrix& tm,
                                   route::Heuristic heuristic,
                                   std::size_t k_paths, util::Rng& rng) {
  LMPR_EXPECTS(tm.num_hosts() == xgft_->num_hosts());
  reset();
  for (const Demand& demand : tm.demands()) {
    if (demand.src == demand.dst || demand.amount == 0.0) continue;
    const auto indices = route::select_path_indices(
        *xgft_, demand.src, demand.dst, k_paths, heuristic, rng);
    const double fraction =
        demand.amount / static_cast<double>(indices.size());
    for (const std::uint64_t index : indices) {
      scratch_links_.clear();
      route::append_path_links(*xgft_, demand.src, demand.dst, index,
                               scratch_links_);
      for (const topo::LinkId link : scratch_links_) {
        loads_[link] += fraction;
      }
    }
  }
  return finish();
}

LoadResult LoadEvaluator::evaluate(const TrafficMatrix& tm,
                                   const route::RouteTable& table) {
  LMPR_EXPECTS(tm.num_hosts() == xgft_->num_hosts());
  reset();
  for (const Demand& demand : tm.demands()) {
    if (demand.src == demand.dst || demand.amount == 0.0) continue;
    const auto paths = table.paths(demand.src, demand.dst);
    const double fraction = demand.amount / static_cast<double>(paths.size());
    for (const route::Path& path : paths) {
      for (const topo::LinkId link : path.links) {
        loads_[link] += fraction;
      }
    }
  }
  return finish();
}

}  // namespace lmpr::flow
