#include "flow/traffic.hpp"

#include <bit>
#include <stdexcept>

#include "util/contracts.hpp"

namespace lmpr::flow {

void TrafficMatrix::add(std::uint64_t src, std::uint64_t dst, double amount) {
  LMPR_EXPECTS(src < num_hosts_ && dst < num_hosts_);
  LMPR_EXPECTS(amount >= 0.0);
  demands_.push_back(Demand{src, dst, amount});
}

double TrafficMatrix::total() const noexcept {
  double sum = 0.0;
  for (const Demand& d : demands_) sum += d.amount;
  return sum;
}

TrafficMatrix TrafficMatrix::permutation(std::uint64_t num_hosts,
                                         std::span<const std::size_t> perm,
                                         double amount) {
  LMPR_EXPECTS(perm.size() == num_hosts);
  TrafficMatrix tm(num_hosts);
  for (std::uint64_t i = 0; i < num_hosts; ++i) {
    tm.add(i, perm[static_cast<std::size_t>(i)], amount);
  }
  return tm;
}

TrafficMatrix TrafficMatrix::random_permutation(std::uint64_t num_hosts,
                                                util::Rng& rng) {
  const auto perm = rng.permutation(static_cast<std::size_t>(num_hosts));
  return permutation(num_hosts, perm);
}

TrafficMatrix TrafficMatrix::uniform(std::uint64_t num_hosts, double rate) {
  LMPR_EXPECTS(num_hosts >= 2);
  TrafficMatrix tm(num_hosts);
  const double amount = rate / static_cast<double>(num_hosts - 1);
  for (std::uint64_t s = 0; s < num_hosts; ++s) {
    for (std::uint64_t d = 0; d < num_hosts; ++d) {
      if (s != d) tm.add(s, d, amount);
    }
  }
  return tm;
}

TrafficMatrix TrafficMatrix::shift(std::uint64_t num_hosts,
                                   std::uint64_t offset, double amount) {
  TrafficMatrix tm(num_hosts);
  for (std::uint64_t i = 0; i < num_hosts; ++i) {
    tm.add(i, (i + offset) % num_hosts, amount);
  }
  return tm;
}

TrafficMatrix TrafficMatrix::bit_reversal(std::uint64_t num_hosts,
                                          double amount) {
  LMPR_EXPECTS(num_hosts >= 2 && std::has_single_bit(num_hosts));
  const int bits = std::countr_zero(num_hosts);
  TrafficMatrix tm(num_hosts);
  for (std::uint64_t i = 0; i < num_hosts; ++i) {
    std::uint64_t rev = 0;
    for (int b = 0; b < bits; ++b) {
      rev |= ((i >> b) & 1ULL) << (bits - 1 - b);
    }
    tm.add(i, rev, amount);
  }
  return tm;
}

TrafficMatrix TrafficMatrix::hotspot(std::uint64_t num_hosts,
                                     std::uint64_t target, double amount) {
  LMPR_EXPECTS(target < num_hosts);
  TrafficMatrix tm(num_hosts);
  for (std::uint64_t i = 0; i < num_hosts; ++i) {
    if (i != target) tm.add(i, target, amount);
  }
  return tm;
}

namespace {

struct AdversarialShape {
  std::uint64_t subtree_hosts = 0;  // S = prod_{i<h} m_i
  std::uint64_t spread = 0;         // W = prod w_i
  std::uint64_t first_multiple = 0; // A = ceil(S / W)
};

AdversarialShape adversarial_shape(const topo::XgftSpec& spec) {
  AdversarialShape shape;
  shape.subtree_hosts = spec.m_prefix_product(spec.height() - 1);
  shape.spread = spec.num_top_switches();
  shape.first_multiple =
      (shape.subtree_hosts + shape.spread - 1) / shape.spread;
  if (shape.first_multiple == 0) shape.first_multiple = 1;
  return shape;
}

}  // namespace

bool adversarial_dmodk_fits(const topo::XgftSpec& spec) {
  if (spec.height() < 1) return false;
  const AdversarialShape shape = adversarial_shape(spec);
  const std::uint64_t hosts = spec.num_hosts();
  // Last destination (A + S - 1) * W must be a valid host id, and the
  // destination stride W must clear the subtree size S so each destination
  // lands in its own height-(h-1) subtree (tightness of the bound).
  const std::uint64_t last =
      (shape.first_multiple + shape.subtree_hosts - 1) * shape.spread;
  return last <= hosts - 1 && shape.spread >= shape.subtree_hosts;
}

TrafficMatrix adversarial_dmodk_traffic(const topo::Xgft& xgft) {
  const topo::XgftSpec& spec = xgft.spec();
  if (!adversarial_dmodk_fits(spec)) {
    throw std::invalid_argument(
        "adversarial_dmodk_traffic: construction does not fit on " +
        spec.to_string() + "; use adversarial_dmodk_topology()");
  }
  const AdversarialShape shape = adversarial_shape(spec);
  TrafficMatrix tm(xgft.num_hosts());
  for (std::uint64_t j = 0; j < shape.subtree_hosts; ++j) {
    tm.add(j, (shape.first_multiple + j) * shape.spread, 1.0);
  }
  return tm;
}

topo::XgftSpec adversarial_dmodk_topology(std::size_t height,
                                          std::uint32_t spread) {
  LMPR_EXPECTS(height >= 1);
  LMPR_EXPECTS(spread >= 2);
  topo::XgftSpec spec;
  spec.m.assign(height, spread);
  spec.w.assign(height, spread);
  spec.w.front() = 1;
  // W = spread^(h-1) = S.  Destinations reach (1 + S) * W = W^2 + W, so the
  // top-level arity must provide W + spread hosts per subtree copy chain.
  std::uint64_t w_total = 1;
  for (auto v : spec.w) w_total *= v;
  spec.m.back() = static_cast<std::uint32_t>(w_total + spread);
  spec.validate();
  LMPR_ENSURES(adversarial_dmodk_fits(spec));
  return spec;
}

}  // namespace lmpr::flow
