// Traffic-AWARE limited multi-path routing: the non-oblivious comparator.
//
// The paper's heuristics must commit to K paths per pair without seeing
// the traffic.  When the traffic matrix IS known, a simple greedy
// assignment -- route each demand's K shares one at a time onto the
// candidate path that minimizes the resulting bottleneck -- gives a
// strong upper reference ("what does obliviousness cost?").  An optional
// refinement loop rips up and re-routes every demand until no pass
// improves the bottleneck.
#pragma once

#include <cstdint>

#include "flow/traffic.hpp"
#include "topology/xgft.hpp"

namespace lmpr::flow {

struct TrafficAwareConfig {
  std::size_t k_paths = 4;
  /// Rip-up-and-reroute passes after the initial greedy placement.
  std::size_t refine_passes = 2;
};

struct TrafficAwareResult {
  /// Max link load of the greedy K-path routing.
  double max_load = 0.0;
  /// How many demand re-routings the refinement performed.
  std::size_t reroutes = 0;
};

/// Deterministic (demand order = matrix order; ties broken by lowest
/// path index).
TrafficAwareResult traffic_aware_kpath(const topo::Xgft& xgft,
                                       const TrafficMatrix& tm,
                                       const TrafficAwareConfig& config);

}  // namespace lmpr::flow
