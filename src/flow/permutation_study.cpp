#include "flow/permutation_study.hpp"

#include <vector>

#include "util/rng.hpp"

namespace lmpr::flow {

namespace {

/// Independent, reproducible RNG for (study seed, sample index, stream).
util::Rng sample_rng(std::uint64_t seed, std::uint64_t sample,
                     std::uint64_t stream) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (sample + 1)) ^
                        (0xc2b2ae3d27d4eb4fULL * (stream + 1));
  return util::Rng{util::splitmix64(state)};
}

struct SampleOutcome {
  double max_load = 0.0;
  double perf = 0.0;
};

}  // namespace

PermutationStudyResult run_permutation_study(
    const topo::Xgft& xgft, const PermutationStudyConfig& config) {
  PermutationStudyResult result;

  // One evaluator per worker slot (slot 0 = the submitting thread): each
  // worker owns its scratch state without locking, and the per-(src,dst)
  // path cache survives across samples -- the whole study evaluates one
  // (heuristic, K), so after the first few samples every flow is a hit.
  // Cached results are bit-identical to uncached, so sample outcomes do
  // not depend on which worker computed them.
  std::vector<LoadEvaluator> evaluators;
  const std::size_t slots =
      (config.pool != nullptr ? config.pool->worker_count() : 0) + 1;
  evaluators.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    evaluators.emplace_back(xgft);
    evaluators.back().set_path_cache_enabled(config.use_path_cache);
  }

  auto evaluate_sample = [&](std::uint64_t sample) {
    util::Rng perm_rng = sample_rng(config.seed, sample, 0);
    util::Rng route_rng = sample_rng(config.seed, sample, 1);
    LoadEvaluator& evaluator = evaluators[util::ThreadPool::worker_slot()];
    const TrafficMatrix tm =
        TrafficMatrix::random_permutation(xgft.num_hosts(), perm_rng);
    SampleOutcome outcome;
    outcome.max_load =
        evaluator.evaluate(tm, config.heuristic, config.k_paths, route_rng)
            .max_load;
    if (config.track_perf_ratio) {
      outcome.perf = perf_ratio(outcome.max_load, oload(xgft, tm).value);
    }
    return outcome;
  };

  std::uint64_t completed = 0;
  while (!config.stopping.satisfied(result.max_load)) {
    const std::size_t target =
        config.stopping.next_batch_target(result.max_load.count());
    const std::size_t batch = target - static_cast<std::size_t>(completed);
    std::vector<SampleOutcome> outcomes(batch);
    auto body = [&](std::size_t i) {
      outcomes[i] = evaluate_sample(completed + i);
    };
    if (config.pool != nullptr) {
      config.pool->parallel_for(batch, body);
    } else {
      for (std::size_t i = 0; i < batch; ++i) body(i);
    }
    // Merge in index order: the accumulated statistics are byte-identical
    // for any worker count.
    for (const SampleOutcome& outcome : outcomes) {
      result.max_load.add(outcome.max_load);
      if (config.track_perf_ratio) result.perf.add(outcome.perf);
    }
    completed += batch;
  }
  result.samples = result.max_load.count();
  result.converged =
      result.max_load.ci_half_width(config.stopping.confidence) <=
      config.stopping.relative_precision * result.max_load.mean();
  return result;
}

}  // namespace lmpr::flow
