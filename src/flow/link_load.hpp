// Flow-level evaluation: the maximum link load MLOAD(r, TM) of a routing
// on a traffic matrix (paper Section 3.2).  Each SD demand is split
// uniformly over the K paths the heuristic selects; link loads accumulate
// additively; the metric is the maximum over all directed links.
#pragma once

#include <cstdint>
#include <vector>

#include "core/heuristics.hpp"
#include "core/route_table.hpp"
#include "flow/traffic.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"

namespace lmpr::flow {

struct LoadResult {
  double max_load = 0.0;
  topo::LinkId argmax = topo::kInvalidLink;
  /// Maximum load among links whose cable sits between level l and l+1,
  /// split by direction -- quantifies where the contention lives
  /// (Section 4.2.2's lower-level imbalance of shift-1).
  std::vector<double> max_up_load_per_level;
  std::vector<double> max_down_load_per_level;
};

/// Reusable evaluator: owns the per-link load array so repeated samples
/// (thousands of permutations) do not reallocate.
class LoadEvaluator {
 public:
  explicit LoadEvaluator(const topo::Xgft& xgft);

  /// Evaluates MLOAD for the heuristic with path limit `k_paths`.
  /// `rng` feeds the randomized heuristics only.
  LoadResult evaluate(const TrafficMatrix& tm, route::Heuristic heuristic,
                      std::size_t k_paths, util::Rng& rng);

  /// Evaluates MLOAD for a pre-built route table.
  LoadResult evaluate(const TrafficMatrix& tm,
                      const route::RouteTable& table);

  /// Streaming accumulation for callers that route demands themselves
  /// (e.g. the fabric manager splitting demands over the surviving LFT
  /// variants of a degraded fabric): begin(), add_load() per traversed
  /// link, then end() for the aggregated result.
  void begin() { reset(); }
  void add_load(topo::LinkId link, double amount) {
    loads_[static_cast<std::size_t>(link)] += amount;
  }
  LoadResult end() { return finish(); }

  /// Per-link loads of the most recent evaluate() call.
  const std::vector<double>& link_loads() const noexcept { return loads_; }

  const topo::Xgft& xgft() const noexcept { return *xgft_; }

 private:
  void reset();
  LoadResult finish();

  const topo::Xgft* xgft_;
  std::vector<double> loads_;
  std::vector<topo::LinkId> scratch_links_;
};

}  // namespace lmpr::flow
