// Flow-level evaluation: the maximum link load MLOAD(r, TM) of a routing
// on a traffic matrix (paper Section 3.2).  Each SD demand is split
// uniformly over the K paths the heuristic selects; link loads accumulate
// additively; the metric is the maximum over all directed links.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/heuristics.hpp"
#include "core/route_table.hpp"
#include "flow/traffic.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace lmpr::flow {

struct LoadResult {
  double max_load = 0.0;
  topo::LinkId argmax = topo::kInvalidLink;
  /// Maximum load among links whose cable sits between level l and l+1,
  /// split by direction -- quantifies where the contention lives
  /// (Section 4.2.2's lower-level imbalance of shift-1).
  std::vector<double> max_up_load_per_level;
  std::vector<double> max_down_load_per_level;
};

/// Reusable evaluator: owns the per-link load array so repeated samples
/// (thousands of permutations) do not reallocate.
class LoadEvaluator {
 public:
  explicit LoadEvaluator(const topo::Topology& topology);

  /// Evaluates MLOAD for the heuristic with path limit `k_paths`.
  /// `rng` feeds the randomized heuristics only.
  ///
  /// For the DETERMINISTIC heuristics the set of path links of an
  /// (src, dst) pair is a pure function of (heuristic, k_paths), so it is
  /// memoized across calls: permutation studies sample thousands of
  /// traffic matrices against the same routing and would otherwise
  /// re-derive the same mixed-radix paths every time.  The randomized
  /// heuristics (random, random-single) always take the RNG-consuming
  /// path -- caching them would change which draws are consumed and
  /// therefore the results.  Cached and uncached evaluation produce
  /// identical results bit-for-bit (same links, same accumulation order).
  LoadResult evaluate(const TrafficMatrix& tm, route::Heuristic heuristic,
                      std::size_t k_paths, util::Rng& rng);

  /// Evaluates MLOAD for a pre-built route table.
  LoadResult evaluate(const TrafficMatrix& tm,
                      const route::RouteTable& table);

  /// Streaming accumulation for callers that route demands themselves
  /// (e.g. the fabric manager splitting demands over the surviving LFT
  /// variants of a degraded fabric): begin(), add_load() per traversed
  /// link, then end() for the aggregated result.
  void begin() { reset(); }
  void add_load(topo::LinkId link, double amount) {
    loads_[static_cast<std::size_t>(link)] += amount;
  }
  LoadResult end() { return finish(); }

  /// Per-link loads of the most recent evaluate() call.
  const std::vector<double>& link_loads() const noexcept { return loads_; }

  const topo::Topology& topology() const noexcept { return *topo_; }

  /// Disables (or re-enables) the deterministic-heuristic path cache;
  /// exists for the cache-equality tests and A/B benchmarking.  Disabling
  /// drops the cached state.
  void set_path_cache_enabled(bool enabled);
  bool path_cache_enabled() const noexcept { return cache_enabled_; }

 private:
  /// Concatenated links of one (src, dst) flow's K selected paths inside
  /// `cache_links_` (fraction = amount / num_paths).
  struct FlowSpan {
    std::uint64_t begin = 0;
    std::uint32_t length = 0;
    std::uint32_t num_paths = 0;
  };

  void reset();
  LoadResult finish();
  const FlowSpan* cached_flow(std::uint64_t src, std::uint64_t dst,
                              route::Heuristic heuristic,
                              std::size_t k_paths);

  const topo::Topology* topo_;
  std::vector<double> loads_;
  std::vector<topo::LinkId> scratch_links_;

  /// Path cache for the deterministic heuristics, keyed by flow id
  /// (src * num_hosts + dst) and valid for one (heuristic, k) at a time
  /// (studies evaluate many samples per routing, not many routings per
  /// sample).  Bounded by a link budget; once full, further misses are
  /// simply computed uncached.
  bool cache_enabled_ = true;
  bool cache_valid_ = false;
  route::Heuristic cache_heuristic_ = route::Heuristic::kDModK;
  std::size_t cache_k_ = 0;
  std::unordered_map<std::uint64_t, FlowSpan> cache_spans_;
  std::vector<topo::LinkId> cache_links_;
};

}  // namespace lmpr::flow
