// Collective-communication workloads: the HPC traffic the paper's
// introduction motivates, modelled as synchronized phases of traffic
// matrices (the standard bandwidth-dominated model: a phase completes
// when its most-loaded link drains, so phase time ∝ max link load).
//
// Included schedules:
//   * shift all-to-all      -- N-1 cyclic-shift phases (Zahavi et al.,
//                              the paper's reference [17]);
//   * recursive doubling    -- log2(N) XOR-partner exchange phases
//                              (allreduce/barrier style);
//   * ring                  -- neighbour shift repeated 2(N-1) times
//                              (ring allreduce);
//   * 3-D stencil halo      -- six ±1 neighbour phases on a periodic
//                              x-major grid embedding;
//   * matrix transpose      -- one (r,c) -> (c,r) permutation phase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/traffic.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"

namespace lmpr::flow {

struct CollectivePhase {
  TrafficMatrix tm;
  /// The phase executes this many times back to back (cost multiplier).
  std::uint64_t repeat = 1;
};

struct Collective {
  std::string name;
  std::vector<CollectivePhase> phases;
};

/// N-1 phases: phase i sends one unit from every host j to (j+i) mod N.
Collective shift_all_to_all(std::uint64_t num_hosts);

/// log2(N) phases of XOR-partner exchange; num_hosts must be a power of
/// two.
Collective recursive_doubling(std::uint64_t num_hosts);

/// One +1-shift phase repeated 2(N-1) times (ring allreduce traffic).
Collective ring_allreduce(std::uint64_t num_hosts);

/// Six halo-exchange phases (+/-x, +/-y, +/-z, periodic) on an
/// nx*ny*nz x-major embedding; requires nx*ny*nz == num_hosts and every
/// dimension >= 2.
Collective stencil3d(std::uint64_t nx, std::uint64_t ny, std::uint64_t nz);

/// One phase: element (r, c) of a rows*cols matrix moves to (c, r);
/// requires rows*cols == num_hosts.
Collective transpose(std::uint64_t rows, std::uint64_t cols);

struct CollectiveCost {
  /// Sum over phases of repeat * MLOAD(r, phase): the bandwidth-model
  /// completion time under the routing.
  double time = 0.0;
  /// Same with the optimal per-phase load (Theorem 1's OLOAD).
  double optimal_time = 0.0;
  /// time / optimal_time (>= 1; == 1 iff the routing is optimal on every
  /// phase).
  double slowdown = 1.0;
};

CollectiveCost evaluate_collective(const topo::Xgft& xgft,
                                   const Collective& collective,
                                   route::Heuristic heuristic,
                                   std::size_t k_paths, util::Rng& rng);

}  // namespace lmpr::flow
