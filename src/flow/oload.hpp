// Optimal-load computation (paper Section 4.1).
//
// Lemma 1: any routing must load some link with at least
//   ML(TM) = max_k max_{st in ST(k)} MT(TM, st) / TL(k),
// the max over all subtree cuts of boundary traffic divided by boundary
// links (singleton "subtrees" of height 0 -- individual hosts -- count).
// Theorem 1 shows UMULTI achieves exactly ML(TM), hence
// OLOAD(TM) = ML(TM) and the bound below is the exact optimum.
#pragma once

#include <cstdint>

#include "flow/traffic.hpp"
#include "topology/xgft.hpp"

namespace lmpr::flow {

struct OloadResult {
  /// OLOAD(TM) = ML(TM).
  double value = 0.0;
  /// The binding cut: subtree height and index.
  std::uint32_t cut_height = 0;
  std::uint64_t cut_subtree = 0;
};

OloadResult oload(const topo::Xgft& xgft, const TrafficMatrix& tm);

/// PERF(r, TM) = MLOAD / OLOAD (>= 1; == 1 iff r is optimal on TM).
/// Returns 1.0 for a zero-load TM and +inf when max_load > 0 on a TM whose
/// optimum is 0 (cannot happen for valid routings).
double perf_ratio(double max_load, double oload_value);

}  // namespace lmpr::flow
