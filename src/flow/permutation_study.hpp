// The paper's flow-level experiment (Section 5, Figure 4): average
// maximum link load over random permutations, sampled until the 99%
// confidence interval is within 2% of the running mean (doubling the
// sample count between checks).
#pragma once

#include <cstdint>

#include "core/heuristics.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "topology/xgft.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace lmpr::flow {

struct PermutationStudyConfig {
  route::Heuristic heuristic = route::Heuristic::kDModK;
  std::size_t k_paths = 1;
  util::CiStoppingRule stopping;
  std::uint64_t seed = 7;
  /// Also accumulate PERF(r, TM) per sample (costs one OLOAD evaluation
  /// per permutation).
  bool track_perf_ratio = true;
  /// Optional worker pool.  Sample i always derives its RNG streams from
  /// (seed, i), so the results are IDENTICAL with or without a pool and
  /// for any worker count.
  util::ThreadPool* pool = nullptr;
  /// Reuse each worker's LoadEvaluator across samples so its
  /// deterministic-heuristic path cache pays off (the routing is fixed for
  /// the whole study; only the traffic matrix changes per sample).
  /// Results are identical either way; the switch exists for the
  /// cache-equality tests and A/B benchmarking.
  bool use_path_cache = true;
};

struct PermutationStudyResult {
  util::OnlineStats max_load;    ///< MLOAD per permutation
  util::OnlineStats perf;        ///< PERF per permutation (if tracked)
  std::size_t samples = 0;
  bool converged = false;        ///< CI criterion met before the cap
};

/// Runs the adaptive-sampling study.  Deterministic for a given seed.
PermutationStudyResult run_permutation_study(
    const topo::Xgft& xgft, const PermutationStudyConfig& config);

}  // namespace lmpr::flow
