#include "adaptive/selector.hpp"

namespace lmpr::adaptive {

std::string_view to_string(SelectPolicy policy) noexcept {
  switch (policy) {
    case SelectPolicy::kOblivious:
      return "oblivious";
    case SelectPolicy::kAdaptiveCredit:
      return "adaptive_credit";
    case SelectPolicy::kAdaptiveOccupancy:
      return "adaptive_occupancy";
  }
  return "?";
}

std::optional<SelectPolicy> select_policy_from_string(
    std::string_view name) noexcept {
  if (name == "oblivious") return SelectPolicy::kOblivious;
  if (name == "adaptive_credit") return SelectPolicy::kAdaptiveCredit;
  if (name == "adaptive_occupancy") return SelectPolicy::kAdaptiveOccupancy;
  return std::nullopt;
}

}  // namespace lmpr::adaptive
