// Adaptive multi-path variant selection: credit-aware choice among the K
// installed LFT variants of a destination.
//
// The paper's limited multi-path routing is traffic-oblivious -- the
// source spreads packets over the K variant LIDs and every switch then
// forwards by DLID alone.  This subsystem adds the other side of the
// design space (Rocher-Gonzalez et al.; FatPaths): at injection and at
// each UPWARD hop, the switch may rewrite the packet's DLID to a sibling
// variant of the same destination when that variant's output port looks
// healthier by live credit/occupancy state.
//
// Contract (DESIGN.md §16 spells out the full argument):
//
//  * Decision points are exactly (a) head-of-queue injection at a source
//    NIC and (b) a packet's ARRIVAL at a switch input buffer -- once per
//    hop, sampling the port state live at the arrival cycle, never again
//    while the packet waits (so the active-set kernel's enqueue-time
//    route snapshots stay valid), and only at nodes whose tables map some
//    destination's variants to >= 2 DISTINCT output links (a host NIC's
//    single uplink, or a switch whose variants collapsed, can never
//    switch a packet -- skipping those wholesale is what keeps the hot
//    path within the tracked <= 10% overhead budget).  Both events are
//    raised by machinery shared verbatim by all three flit kernels, and
//    the event kernel's fast-forward only fires on a whole-network
//    quiescent cycle (nothing buffered or in flight anywhere), so no
//    decision point is ever skipped and the selector preserves kernel
//    bit-identity.
//  * The selector only engages when the packet's CURRENT table entry is
//    usable and points up.  All candidate variants considered must be
//    usable and up as well; otherwise the incumbent entry is returned
//    untouched, so the fault path (salvage / drop accounting) stays
//    entry-for-entry identical to an oblivious run.
//  * Rewriting the DLID mid-route is loop-free: on an XGFT all ancestors
//    of a node at a level cover the same subtree, so every variant's
//    entry at a node below the apex points up and the descent (at and
//    above the apex) is variant-independent.  Up hops strictly increase
//    the level, levels are bounded, and the forced descent delivers.
//
// The selector itself is deliberately simulator-agnostic: the flit
// network supplies candidates (per-variant output link + port state)
// through a callable, and the selector owns only the scoring, the
// rotating deterministic tie-break and the decision/switch counters that
// the equivalence harnesses assert are kernel-independent.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace lmpr::adaptive {

/// How a packet's path variant is (re)chosen at each decision point.
/// `kOblivious` is the paper's behavior: the variant picked at the source
/// (SimConfig::path_selection) is final.  The adaptive policies re-score
/// all K variants against live output-port state:
///
///   kAdaptiveCredit     downstream credits first (mirrors the all-ports
///                       RoutingMode::kAdaptive score so the two baselines
///                       are comparable): 1 + credits*4 + free_slots*2 + idle
///   kAdaptiveOccupancy  local output occupancy first:
///                       1 + free_slots*4 + credits*2 + idle
enum class SelectPolicy : std::uint8_t {
  kOblivious,
  kAdaptiveCredit,
  kAdaptiveOccupancy,
};

/// "oblivious" / "adaptive_credit" / "adaptive_occupancy" -- the spelling
/// `lmpr replay --select` accepts.
std::string_view to_string(SelectPolicy policy) noexcept;
std::optional<SelectPolicy> select_policy_from_string(
    std::string_view name) noexcept;

/// Live state of one candidate output port at the decision cycle.
struct PortState {
  std::uint32_t credits = 0;     ///< free buffer slots at the far endpoint
  std::uint32_t free_slots = 0;  ///< free slots in the local output buffer
  bool idle = false;             ///< serializer not busy this cycle
};

/// The per-policy port score.  Strictly positive for any valid port so a
/// zero can never tie with a real candidate.
inline std::uint64_t port_score(SelectPolicy policy,
                                const PortState& port) noexcept {
  const std::uint64_t idle = port.idle ? 1 : 0;
  switch (policy) {
    case SelectPolicy::kAdaptiveCredit:
      return 1 + std::uint64_t{port.credits} * 4 +
             std::uint64_t{port.free_slots} * 2 + idle;
    case SelectPolicy::kAdaptiveOccupancy:
      return 1 + std::uint64_t{port.free_slots} * 4 +
             std::uint64_t{port.credits} * 2 + idle;
    case SelectPolicy::kOblivious:
      break;
  }
  return 0;
}

/// Kernel-independent observables: how often the selector evaluated a
/// decision point and how often it actually moved a packet off its
/// incumbent variant.  The differential harnesses assert these match
/// bit-for-bit across the three kernels AND are non-zero on adaptive
/// configurations (the degeneracy guard).
struct SelectorStats {
  std::uint64_t decisions = 0;
  std::uint64_t switches = 0;

  friend bool operator==(const SelectorStats&,
                         const SelectorStats&) = default;
};

/// Picks among `block` variant LIDs of one destination.  The simulator
/// provides a callable `variant -> Candidate`; the selector never touches
/// simulator state directly.
class VariantSelector {
 public:
  VariantSelector() = default;
  /// `perfect_score` is the score of a completely healthy port (full
  /// credits, empty output buffer, idle serializer) under `policy`, or 0
  /// to disable the shortcut: an incumbent scoring it cannot be STRICTLY
  /// beaten, so pick() skips the sibling scan entirely.  Pure hot-path
  /// optimization -- the chosen variant is identical with or without it.
  VariantSelector(SelectPolicy policy, std::uint32_t block,
                  std::uint64_t perfect_score = 0) noexcept
      : policy_(policy), block_(block), perfect_score_(perfect_score) {}

  /// False when every decision is a no-op (oblivious policy or a single
  /// installed variant) -- callers skip the candidate scan entirely.
  bool engaged() const noexcept {
    return policy_ != SelectPolicy::kOblivious && block_ > 1;
  }

  SelectPolicy policy() const noexcept { return policy_; }
  std::uint32_t block() const noexcept { return block_; }
  const SelectorStats& stats() const noexcept { return stats_; }

  /// One candidate variant: `valid` means its table entry is usable, up
  /// and therefore a legal rewrite target; `same_link` means it forwards
  /// through the incumbent's output port (scored once via the incumbent).
  struct Candidate {
    PortState port;
    bool valid = false;
    bool same_link = false;
  };

  /// Evaluates all variants and returns the chosen one.  The incumbent is
  /// seeded as best and only displaced by a STRICTLY better score; among
  /// equal non-incumbent candidates the rotating start `(i + now) % block`
  /// breaks the tie deterministically (the same rotation the all-ports
  /// adaptive baseline uses), so reruns and kernels agree bit-for-bit.
  template <typename CandidateFn>
  std::uint32_t pick(std::uint32_t incumbent, CandidateFn&& candidate,
                     std::uint64_t now) {
    ++stats_.decisions;
    const Candidate base = candidate(incumbent);
    std::uint32_t best = incumbent;
    std::uint64_t best_score = port_score(policy_, base.port);
    // A perfect incumbent cannot be strictly displaced: skip the scan.
    // (The decision still counts -- the counters stay kernel-identical.)
    if (perfect_score_ != 0 && best_score >= perfect_score_) return incumbent;
    // One modulo per decision, not per candidate: the rotating start is
    // computed once and wraps by compare-and-reset (this is the selector's
    // hot path -- a 64-bit divide per candidate blows the overhead budget).
    std::uint32_t j = static_cast<std::uint32_t>(now % block_);
    for (std::uint32_t i = 0; i < block_; ++i) {
      const std::uint32_t v = j;
      if (++j == block_) j = 0;
      if (v == incumbent) continue;
      const Candidate c = candidate(v);
      if (!c.valid || c.same_link) continue;
      const std::uint64_t score = port_score(policy_, c.port);
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    if (best != incumbent) ++stats_.switches;
    return best;
  }

  void reset_stats() noexcept { stats_ = SelectorStats{}; }

 private:
  SelectPolicy policy_ = SelectPolicy::kOblivious;
  std::uint32_t block_ = 1;
  std::uint64_t perfect_score_ = 0;  ///< see ctor; 0 disables the shortcut
  SelectorStats stats_{};
};

}  // namespace lmpr::adaptive
