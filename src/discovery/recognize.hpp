// XGFT topology recognition -- the subnet-manager side of the story.
//
// A fabric manager (e.g. OpenSM's fat-tree routing engine) sees only a
// cable list and which endpoints are hosts; to apply XGFT routing it must
// first RECOGNIZE the fabric as an XGFT(h; m1..mh; w1..wh) and assign
// every switch its (level, a_h..a_1) label.  This module implements that
// recognition:
//
//   1. level assignment  -- multi-source BFS from the hosts; every cable
//      must join adjacent levels;
//   2. recursive decomposition -- removing the level-k top switches of a
//      height-k component must leave m_k identical height-(k-1) XGFTs
//      (the copies), and each top switch must connect to the SAME-ranked
//      sub-top switch in every copy (the XGFT recursion of Section 3.1);
//   3. arity inference   -- m_k = copy count, w_k = parallel-switch group
//      size, checked for consistency across sibling components;
//   4. verification      -- the inferred labeling is checked edge-by-edge
//      against a freshly constructed topo::Xgft, so a successful result
//      is a PROVEN isomorphism, not a guess.
//
// recognize_xgft() is total: malformed inputs produce ok = false with a
// diagnostic instead of UB or exceptions (fabric descriptions come from
// outside the process).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "topology/xgft.hpp"
#include "util/rng.hpp"

namespace lmpr::discovery {

/// A fabric as a subnet manager sees it: opaque node ids, undirected
/// cables, and the set of host endpoints.
struct RawFabric {
  std::uint32_t num_nodes = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cables;
  std::vector<std::uint32_t> hosts;
};

struct RecognitionResult {
  bool ok = false;
  std::string error;          ///< diagnostic when !ok
  topo::XgftSpec spec;        ///< inferred (h; m; w)
  /// canonical[raw] = node id in topo::Xgft{spec} (labels included via
  /// Xgft::label_of); only meaningful when ok.
  std::vector<topo::NodeId> canonical;
};

RecognitionResult recognize_xgft(const RawFabric& fabric);

/// Exports a topology as a RawFabric, optionally shuffling node ids (and
/// always shuffling cable order) -- the round-trip test harness for the
/// recognizer.
RawFabric export_fabric(const topo::Xgft& xgft, util::Rng* shuffle = nullptr);

}  // namespace lmpr::discovery
