#include "discovery/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lmpr::discovery {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  throw std::runtime_error("fabric parse error at line " +
                           std::to_string(line) + ": " + message);
}

}  // namespace

RawFabric load_fabric(std::istream& in) {
  RawFabric fabric;
  bool have_header = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream iss(line);
    std::string keyword;
    if (!(iss >> keyword)) continue;  // blank / comment-only line

    auto read_id = [&]() -> std::uint32_t {
      std::uint64_t value = 0;
      if (!(iss >> value)) parse_error(line_no, "expected a node id");
      if (!have_header) parse_error(line_no, "'fabric' header must come first");
      if (value >= fabric.num_nodes) {
        parse_error(line_no, "node id " + std::to_string(value) +
                                 " out of range");
      }
      return static_cast<std::uint32_t>(value);
    };

    if (keyword == "fabric") {
      if (have_header) parse_error(line_no, "duplicate 'fabric' header");
      std::uint64_t count = 0;
      if (!(iss >> count) || count == 0) {
        parse_error(line_no, "expected a positive node count");
      }
      fabric.num_nodes = static_cast<std::uint32_t>(count);
      have_header = true;
    } else if (keyword == "host") {
      std::uint64_t peek = 0;
      if (!have_header) parse_error(line_no, "'fabric' header must come first");
      while (iss >> peek) {
        if (peek >= fabric.num_nodes) {
          parse_error(line_no, "host id out of range");
        }
        fabric.hosts.push_back(static_cast<std::uint32_t>(peek));
      }
    } else if (keyword == "cable") {
      const std::uint32_t u = read_id();
      const std::uint32_t v = read_id();
      fabric.cables.emplace_back(u, v);
    } else {
      parse_error(line_no, "unknown directive '" + keyword + "'");
    }
  }
  if (!have_header) {
    throw std::runtime_error("fabric parse error: missing 'fabric' header");
  }
  return fabric;
}

void save_fabric(const RawFabric& fabric, std::ostream& out) {
  out << "# lmpr fabric description\n";
  out << "fabric " << fabric.num_nodes << "\n";
  out << "host";
  for (const auto host : fabric.hosts) out << ' ' << host;
  out << "\n";
  for (const auto& [u, v] : fabric.cables) {
    out << "cable " << u << ' ' << v << "\n";
  }
}

RawFabric load_fabric_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open fabric file " + path);
  return load_fabric(in);
}

void save_fabric_file(const RawFabric& fabric, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write fabric file " + path);
  save_fabric(fabric, out);
  if (!out) throw std::runtime_error("failed writing fabric file " + path);
}

}  // namespace lmpr::discovery
