#include "discovery/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace lmpr::discovery {

namespace {

FabricParseResult fail(std::size_t line, const std::string& message) {
  FabricParseResult result;
  result.error = "fabric parse error at line " + std::to_string(line) + ": " +
                 message;
  return result;
}

std::uint64_t cable_key(std::uint32_t u, std::uint32_t v) {
  const std::uint64_t lo = std::min(u, v);
  const std::uint64_t hi = std::max(u, v);
  return (lo << 32) | hi;
}

}  // namespace

FabricParseResult try_load_fabric(std::istream& in) {
  FabricParseResult result;
  RawFabric& fabric = result.fabric;
  bool have_header = false;
  std::unordered_set<std::uint64_t> seen_cables;
  std::unordered_set<std::uint32_t> seen_hosts;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream iss(line);
    std::string keyword;
    if (!(iss >> keyword)) continue;  // blank / comment-only line

    bool bad = false;
    auto read_id = [&]() -> std::uint32_t {
      std::uint64_t value = 0;
      if (!(iss >> value)) {
        result = fail(line_no, "truncated '" + keyword + "': expected a node id");
        bad = true;
        return 0;
      }
      if (!have_header) {
        result = fail(line_no, "'fabric' header must come first");
        bad = true;
        return 0;
      }
      if (value >= fabric.num_nodes) {
        result = fail(line_no,
                      "node id " + std::to_string(value) + " out of range");
        bad = true;
        return 0;
      }
      return static_cast<std::uint32_t>(value);
    };

    if (keyword == "fabric") {
      if (have_header) return fail(line_no, "duplicate 'fabric' header");
      std::uint64_t count = 0;
      if (!(iss >> count) || count == 0) {
        return fail(line_no, "expected a positive node count");
      }
      fabric.num_nodes = static_cast<std::uint32_t>(count);
      have_header = true;
    } else if (keyword == "host") {
      std::uint64_t peek = 0;
      if (!have_header) {
        return fail(line_no, "'fabric' header must come first");
      }
      while (iss >> peek) {
        if (peek >= fabric.num_nodes) {
          return fail(line_no, "host id out of range");
        }
        const auto id = static_cast<std::uint32_t>(peek);
        if (!seen_hosts.insert(id).second) {
          return fail(line_no,
                      "host " + std::to_string(id) + " listed twice");
        }
        fabric.hosts.push_back(id);
      }
    } else if (keyword == "cable") {
      const std::uint32_t u = read_id();
      if (bad) return result;
      const std::uint32_t v = read_id();
      if (bad) return result;
      if (!seen_cables.insert(cable_key(u, v)).second) {
        return fail(line_no, "duplicate cable between " + std::to_string(u) +
                                 " and " + std::to_string(v));
      }
      fabric.cables.emplace_back(u, v);
    } else {
      return fail(line_no, "unknown directive '" + keyword + "'");
    }
    iss.clear();  // a stopped numeric read leaves failbit set
    std::string leftover;
    if (iss >> leftover) {
      return fail(line_no, "unexpected token '" + leftover + "' after '" +
                               keyword + "'");
    }
  }
  if (!have_header) {
    result.error = "fabric parse error: missing 'fabric' header";
    return result;
  }
  result.ok = true;
  return result;
}

FabricParseResult try_load_fabric_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    FabricParseResult result;
    result.error = "cannot open fabric file " + path;
    return result;
  }
  return try_load_fabric(in);
}

RawFabric load_fabric(std::istream& in) {
  auto result = try_load_fabric(in);
  if (!result.ok) throw std::runtime_error(result.error);
  return std::move(result.fabric);
}

void save_fabric(const RawFabric& fabric, std::ostream& out) {
  out << "# lmpr fabric description\n";
  out << "fabric " << fabric.num_nodes << "\n";
  out << "host";
  for (const auto host : fabric.hosts) out << ' ' << host;
  out << "\n";
  for (const auto& [u, v] : fabric.cables) {
    out << "cable " << u << ' ' << v << "\n";
  }
}

RawFabric load_fabric_file(const std::string& path) {
  auto result = try_load_fabric_file(path);
  if (!result.ok) throw std::runtime_error(result.error);
  return std::move(result.fabric);
}

void save_fabric_file(const RawFabric& fabric, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write fabric file " + path);
  save_fabric(fabric, out);
  if (!out) throw std::runtime_error("failed writing fabric file " + path);
}

}  // namespace lmpr::discovery
