#include "discovery/recognize.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "util/contracts.hpp"

namespace lmpr::discovery {

namespace {

/// Digits 1..k prescribed for a level-k top switch by its parent
/// recursion (empty = unconstrained call).
using Constraints = std::map<std::uint32_t, std::vector<std::uint32_t>>;

struct Workspace {
  std::vector<std::vector<std::uint32_t>> adjacency;
  std::vector<std::uint32_t> level;
  /// digits[node][i-1] = a_i (assigned bottom-up during recursion).
  std::vector<std::vector<std::uint32_t>> digits;
  /// Inferred arities; 0 = not yet discovered.
  std::vector<std::uint32_t> m;  // index k-1 holds m_k
  std::vector<std::uint32_t> w;  // index k-1 holds w_k
  /// Membership stamps for component splitting (monotone counter).
  std::vector<std::uint64_t> stamp;
  std::uint64_t stamp_counter = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) error = message;
    return false;
  }

  bool set_or_check(std::vector<std::uint32_t>& arity, std::uint32_t k,
                    std::uint64_t value, const char* what) {
    if (value == 0 || value > 0xffffffffULL) {
      return fail(std::string("inconsistent ") + what + " arity");
    }
    auto& slot = arity[k - 1];
    if (slot == 0) {
      slot = static_cast<std::uint32_t>(value);
      return true;
    }
    if (slot != value) {
      std::ostringstream oss;
      oss << what << "_" << k << " differs between sibling subtrees ("
          << slot << " vs " << value << ")";
      return fail(oss.str());
    }
    return true;
  }
};

/// Labels one height-k component (nodes at levels 0..k): assigns digit
/// positions 1..k of every member and infers m_k / w_k.  `constraints`,
/// when non-empty, prescribes digits 1..k for every level-k top of this
/// component (the parent recursion's alignment requirement).
bool label_component(Workspace& ws, const std::vector<std::uint32_t>& nodes,
                     std::uint32_t k, const Constraints& constraints) {
  if (k == 0) {
    if (nodes.size() != 1 || ws.level[nodes[0]] != 0) {
      return ws.fail("height-0 component is not a single host");
    }
    return true;  // empty digit constraints are trivially satisfied
  }

  std::vector<std::uint32_t> tops;
  std::vector<std::uint32_t> rest;
  for (const auto node : nodes) {
    (ws.level[node] == k ? tops : rest).push_back(node);
  }
  if (tops.empty()) return ws.fail("component missing its top switches");
  if (rest.empty()) return ws.fail("component has switches but no subtree");
  if (!constraints.empty()) {
    for (const auto top : tops) {
      if (!constraints.contains(top)) {
        return ws.fail("top switch missing an alignment constraint");
      }
    }
  }

  // Split `rest` into connected components (the m_k copies).
  const std::uint64_t member_stamp = ++ws.stamp_counter;
  for (const auto node : rest) ws.stamp[node] = member_stamp;
  std::vector<std::vector<std::uint32_t>> copies;
  std::vector<std::uint64_t> copy_of(ws.level.size(), 0);
  for (const auto seed : rest) {
    if (copy_of[seed] != 0) continue;
    copies.emplace_back();
    auto& copy = copies.back();
    const std::uint64_t id = copies.size();
    std::deque<std::uint32_t> frontier{seed};
    copy_of[seed] = id;
    while (!frontier.empty()) {
      const auto node = frontier.front();
      frontier.pop_front();
      copy.push_back(node);
      for (const auto next : ws.adjacency[node]) {
        if (ws.stamp[next] != member_stamp || copy_of[next] != 0) continue;
        copy_of[next] = id;
        frontier.push_back(next);
      }
    }
  }

  if (!ws.set_or_check(ws.m, k, copies.size(), "m")) return false;
  for (std::size_t c = 1; c < copies.size(); ++c) {
    if (copies[c].size() != copies[0].size()) {
      return ws.fail("subtree copies differ in size");
    }
  }
  // The copy index is a free m-digit even under constraints (permuting
  // copies is an automorphism that fixes all w-digits).
  for (std::size_t c = 0; c < copies.size(); ++c) {
    for (const auto node : copies[c]) {
      ws.digits[node][k - 1] = static_cast<std::uint32_t>(c);
    }
  }

  // Wiring sanity common to both modes: every top reaches each copy
  // exactly once through level-(k-1) sub-tops.
  std::vector<std::vector<std::uint32_t>> child_in_copy(
      tops.size(), std::vector<std::uint32_t>(copies.size()));
  for (std::size_t t = 0; t < tops.size(); ++t) {
    std::vector<bool> seen(copies.size(), false);
    std::size_t children = 0;
    for (const auto neighbor : ws.adjacency[tops[t]]) {
      // Neighbors one level up are this top's own parents (handled by the
      // enclosing recursion); only downward neighbors are children here.
      if (ws.level[neighbor] != k - 1) continue;
      if (ws.stamp[neighbor] != member_stamp) {
        return ws.fail("top switch wired outside its component");
      }
      const auto c = static_cast<std::size_t>(copy_of[neighbor] - 1);
      if (seen[c]) return ws.fail("top switch reaches a copy twice");
      seen[c] = true;
      child_in_copy[t][c] = neighbor;
      ++children;
    }
    if (children != copies.size()) {
      return ws.fail("top switch down-degree != copy count");
    }
  }

  // Group tops into parallel bundles: tops are parallel iff they share
  // their child in EVERY copy (in a true XGFT, the w_k switches over
  // sub-top rank x).  Verified by keying on the full child tuple.
  std::map<std::vector<std::uint32_t>, std::vector<std::size_t>> bundles;
  for (std::size_t t = 0; t < tops.size(); ++t) {
    bundles[child_in_copy[t]].push_back(t);
  }
  const std::size_t bundle_size = bundles.begin()->second.size();
  for (const auto& [children, members] : bundles) {
    if (members.size() != bundle_size) {
      return ws.fail("parallel top-switch bundles differ in size");
    }
  }
  if (!ws.set_or_check(ws.w, k, bundle_size, "w")) return false;
  const std::uint32_t w_k = ws.w[k - 1];

  // Expected number of bundles: one per sub-top rank, prod_{i<k} w_i --
  // but w_1..w_{k-1} may be undiscovered in unconstrained mode; the count
  // is re-verified by the final isomorphism check, so here we only need
  // each copy's sub-top set covered exactly once per bundle, which the
  // recursion below enforces through rank constraints.

  if (constraints.empty()) {
    // Free mode: label copy 0 first, then read each bundle's rank off its
    // copy-0 child and propagate that rank into the other copies.
    if (!label_component(ws, copies[0], k - 1, {})) return false;
    // Assign digits to tops: positions 1..k-1 from the copy-0 child,
    // position k by enumeration within the bundle.
    std::set<std::vector<std::uint32_t>> ranks_seen;
    for (const auto& [children, members] : bundles) {
      const std::uint32_t sample = children[0];
      std::vector<std::uint32_t> rank_digits(
          ws.digits[sample].begin(),
          ws.digits[sample].begin() + (k - 1));
      if (!ranks_seen.insert(rank_digits).second) {
        return ws.fail("two top-switch bundles share a sub-top rank");
      }
      for (std::size_t j = 0; j < members.size(); ++j) {
        const auto top = tops[members[j]];
        for (std::uint32_t i = 1; i < k; ++i) {
          ws.digits[top][i - 1] = rank_digits[i - 1];
        }
        ws.digits[top][k - 1] = static_cast<std::uint32_t>(j);
      }
    }
    // Propagate: in copy c, the bundle's child must take the copy-0
    // child's rank.
    for (std::size_t c = 1; c < copies.size(); ++c) {
      Constraints sub;
      for (const auto& [children, members] : bundles) {
        std::vector<std::uint32_t> rank_digits(
            ws.digits[children[0]].begin(),
            ws.digits[children[0]].begin() + (k - 1));
        auto [it, inserted] = sub.emplace(children[c], rank_digits);
        if (!inserted && it->second != rank_digits) {
          return ws.fail("conflicting sub-top alignment");
        }
      }
      if (!label_component(ws, copies[c], k - 1, sub)) return false;
    }
    return true;
  }

  // Constrained mode: tops' digits 1..k are prescribed.  Bundles must be
  // exactly the groups of equal prescribed rank, with the prescribed j
  // digits forming a permutation of [0, w_k); the prescribed rank becomes
  // every copy's sub-top constraint.
  for (const auto& [children, members] : bundles) {
    std::vector<std::uint32_t> rank_digits;
    std::vector<bool> j_used(w_k, false);
    for (std::size_t idx = 0; idx < members.size(); ++idx) {
      const auto top = tops[members[idx]];
      const auto& want = constraints.at(top);
      if (want.size() != k) {
        return ws.fail("malformed alignment constraint");
      }
      std::vector<std::uint32_t> rank(want.begin(), want.end() - 1);
      if (idx == 0) {
        rank_digits = rank;
      } else if (rank != rank_digits) {
        return ws.fail("bundle members prescribed different ranks");
      }
      const std::uint32_t j = want.back();
      if (j >= w_k || j_used[j]) {
        return ws.fail("prescribed top digits are not a permutation");
      }
      j_used[j] = true;
      for (std::uint32_t i = 1; i <= k; ++i) {
        ws.digits[top][i - 1] = want[i - 1];
      }
    }
  }
  for (std::size_t c = 0; c < copies.size(); ++c) {
    Constraints sub;
    for (const auto& [children, members] : bundles) {
      const auto top = tops[members[0]];
      std::vector<std::uint32_t> rank_digits(
          ws.digits[top].begin(), ws.digits[top].begin() + (k - 1));
      auto [it, inserted] = sub.emplace(children[c], rank_digits);
      if (!inserted && it->second != rank_digits) {
        return ws.fail("conflicting sub-top alignment");
      }
    }
    if (!label_component(ws, copies[c], k - 1, sub)) return false;
  }
  return true;
}

}  // namespace

RecognitionResult recognize_xgft(const RawFabric& fabric) {
  RecognitionResult result;
  auto fail = [&](const std::string& message) {
    result.ok = false;
    result.error = message;
    return result;
  };

  if (fabric.num_nodes == 0) return fail("empty fabric");
  if (fabric.hosts.empty()) return fail("no hosts declared");

  // Adjacency with validation.
  Workspace ws;
  ws.adjacency.resize(fabric.num_nodes);
  {
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (const auto& [u, v] : fabric.cables) {
      if (u >= fabric.num_nodes || v >= fabric.num_nodes) {
        return fail("cable references unknown node");
      }
      if (u == v) return fail("self-loop cable");
      const auto key = std::minmax(u, v);
      if (!seen.insert({key.first, key.second}).second) {
        return fail("duplicate cable");
      }
      ws.adjacency[u].push_back(v);
      ws.adjacency[v].push_back(u);
    }
  }

  // Multi-source BFS levels from the hosts.
  constexpr std::uint32_t kUnset = static_cast<std::uint32_t>(-1);
  ws.level.assign(fabric.num_nodes, kUnset);
  {
    std::set<std::uint32_t> host_set(fabric.hosts.begin(),
                                     fabric.hosts.end());
    if (host_set.size() != fabric.hosts.size()) {
      return fail("duplicate host declaration");
    }
    std::deque<std::uint32_t> frontier;
    for (const auto host : fabric.hosts) {
      if (host >= fabric.num_nodes) return fail("unknown host id");
      ws.level[host] = 0;
      frontier.push_back(host);
    }
    while (!frontier.empty()) {
      const auto node = frontier.front();
      frontier.pop_front();
      for (const auto next : ws.adjacency[node]) {
        if (ws.level[next] != kUnset) continue;
        ws.level[next] = ws.level[node] + 1;
        frontier.push_back(next);
      }
    }
    for (std::uint32_t node = 0; node < fabric.num_nodes; ++node) {
      if (ws.level[node] == kUnset) return fail("disconnected node");
      if (ws.level[node] == 0 && !host_set.contains(node)) {
        return fail("non-host node at level 0");
      }
    }
  }
  for (const auto& [u, v] : fabric.cables) {
    const auto lu = ws.level[u];
    const auto lv = ws.level[v];
    if (lu + 1 != lv && lv + 1 != lu) {
      return fail("cable joins non-adjacent levels");
    }
  }

  std::uint32_t height = 0;
  for (const auto level : ws.level) height = std::max(height, level);
  if (height == 0) return fail("fabric has no switches");

  ws.digits.assign(fabric.num_nodes,
                   std::vector<std::uint32_t>(height, 0));
  ws.m.assign(height, 0);
  ws.w.assign(height, 0);
  ws.stamp.assign(fabric.num_nodes, 0);

  std::vector<std::uint32_t> all(fabric.num_nodes);
  for (std::uint32_t node = 0; node < fabric.num_nodes; ++node) {
    all[node] = node;
  }
  if (!label_component(ws, all, height, {})) return fail(ws.error);

  topo::XgftSpec spec{ws.m, ws.w};
  try {
    spec.validate();
  } catch (const std::exception& ex) {
    return fail(std::string("inferred spec invalid: ") + ex.what());
  }

  // Independent verification: map every raw node through its label into a
  // freshly built Xgft and check the edge sets coincide.
  const topo::Xgft xgft{spec};
  if (xgft.num_nodes() != fabric.num_nodes) {
    return fail("node count does not match the inferred spec");
  }
  if (xgft.num_cables() != fabric.cables.size()) {
    return fail("cable count does not match the inferred spec");
  }
  result.canonical.assign(fabric.num_nodes, topo::kInvalidNode);
  std::vector<bool> used(static_cast<std::size_t>(xgft.num_nodes()), false);
  for (std::uint32_t node = 0; node < fabric.num_nodes; ++node) {
    const topo::Label label{ws.level[node], ws.digits[node]};
    for (std::size_t i = 1; i <= height; ++i) {
      if (label.digits[i - 1] >=
          topo::digit_radix(spec, label.level, i)) {
        return fail("assigned digit exceeds its radix");
      }
    }
    const topo::NodeId mapped = xgft.node_of(label);
    if (used[mapped]) return fail("labeling is not injective");
    used[mapped] = true;
    result.canonical[node] = mapped;
  }
  for (const auto& [u, v] : fabric.cables) {
    const auto [low_raw, high_raw] =
        ws.level[u] < ws.level[v] ? std::pair{u, v} : std::pair{v, u};
    const topo::NodeId low = result.canonical[low_raw];
    const topo::NodeId high = result.canonical[high_raw];
    bool found = false;
    for (std::uint32_t j = 0; j < xgft.num_parents(low); ++j) {
      found |= (xgft.parent(low, j) == high);
    }
    if (!found) return fail("cable has no counterpart in the inferred XGFT");
  }

  result.ok = true;
  result.spec = std::move(spec);
  return result;
}

RawFabric export_fabric(const topo::Xgft& xgft, util::Rng* shuffle) {
  RawFabric fabric;
  fabric.num_nodes = static_cast<std::uint32_t>(xgft.num_nodes());
  std::vector<std::uint32_t> rename(fabric.num_nodes);
  for (std::uint32_t node = 0; node < fabric.num_nodes; ++node) {
    rename[node] = node;
  }
  if (shuffle != nullptr) shuffle->shuffle(rename);

  for (std::uint64_t c = 0; c < xgft.num_cables(); ++c) {
    const topo::Link& link = xgft.link(static_cast<topo::LinkId>(c));
    std::uint32_t u = rename[link.src];
    std::uint32_t v = rename[link.dst];
    if (shuffle != nullptr && shuffle->below(2) == 1) std::swap(u, v);
    fabric.cables.emplace_back(u, v);
  }
  if (shuffle != nullptr) shuffle->shuffle(fabric.cables);

  for (std::uint64_t h = 0; h < xgft.num_hosts(); ++h) {
    fabric.hosts.push_back(rename[xgft.host(h)]);
  }
  if (shuffle != nullptr) shuffle->shuffle(fabric.hosts);
  return fabric;
}

}  // namespace lmpr::discovery
