// Plain-text serialization of RawFabric cable lists -- the on-disk format
// the subnet-manager example consumes, and the interchange point for
// fabrics coming from outside the library.
//
// Format (line oriented, '#' starts a comment):
//
//   fabric <num_nodes>
//   host <id> [<id> ...]
//   cable <u> <v>
//   ...
//
// Parsing is strict: unknown directives, out-of-range ids, duplicate
// cables or hosts, and a missing header are all rejected with a
// line-numbered diagnostic.  try_load_fabric reports them as ok = false;
// the load_fabric wrappers throw std::runtime_error with the same text.
#pragma once

#include <iosfwd>
#include <string>

#include "discovery/recognize.hpp"

namespace lmpr::discovery {

/// Total (non-throwing) parse result: when !ok, `error` carries the
/// line-numbered diagnostic and `fabric` must not be used.
struct FabricParseResult {
  bool ok = false;
  std::string error;
  RawFabric fabric;
};

FabricParseResult try_load_fabric(std::istream& in);
FabricParseResult try_load_fabric_file(const std::string& path);

RawFabric load_fabric(std::istream& in);
void save_fabric(const RawFabric& fabric, std::ostream& out);

RawFabric load_fabric_file(const std::string& path);
void save_fabric_file(const RawFabric& fabric, const std::string& path);

}  // namespace lmpr::discovery
