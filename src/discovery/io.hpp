// Plain-text serialization of RawFabric cable lists -- the on-disk format
// the subnet-manager example consumes, and the interchange point for
// fabrics coming from outside the library.
//
// Format (line oriented, '#' starts a comment):
//
//   fabric <num_nodes>
//   host <id> [<id> ...]
//   cable <u> <v>
//   ...
//
// Parsing is strict: unknown directives, out-of-range ids or a missing
// header throw std::runtime_error with a line number.
#pragma once

#include <iosfwd>
#include <string>

#include "discovery/recognize.hpp"

namespace lmpr::discovery {

RawFabric load_fabric(std::istream& in);
void save_fabric(const RawFabric& fabric, std::ostream& out);

RawFabric load_fabric_file(const std::string& path);
void save_fabric_file(const RawFabric& fabric, const std::string& path);

}  // namespace lmpr::discovery
