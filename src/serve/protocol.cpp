#include "serve/protocol.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <vector>

namespace lmpr::serve {

std::string_view to_string(Command command) noexcept {
  switch (command) {
    case Command::kLoad: return "LOAD";
    case Command::kTopo: return "TOPO";
    case Command::kEvent: return "EVENT";
    case Command::kPath: return "PATH";
    case Command::kStats: return "STATS";
    case Command::kGen: return "GEN";
    case Command::kQuit: return "QUIT";
    case Command::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

namespace {

ParsedRequest fail(std::string message) {
  ParsedRequest parsed;
  parsed.ok = false;
  parsed.error = std::move(message);
  return parsed;
}

/// Echo of a client-supplied token inside a diagnostic, clipped so a
/// hostile kilobyte token cannot bloat the one-line ERR response.
std::string clip(std::string_view token) {
  constexpr std::size_t kMax = 40;
  if (token.size() <= kMax) return std::string{token};
  return std::string{token.substr(0, kMax - 3)} + "...";
}

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::vector<std::string_view> tokenize(std::string_view text) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) tokens.push_back(text.substr(start, i - start));
  }
  return tokens;
}

bool keyword_is(std::string_view token, std::string_view upper) {
  if (token.size() != upper.size()) return false;
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(token[i])) != upper[i]) {
      return false;
    }
  }
  return true;
}

bool parse_u64(std::string_view token, std::uint64_t& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last && first != last;
}

/// The fm::events parser prefixes every diagnostic with
/// "event script line 1: " -- the payload is always a single line, so the
/// session's own line counter supersedes it.
std::string strip_event_prefix(const std::string& error) {
  constexpr std::string_view kPrefix = "event script line 1: ";
  if (error.rfind(kPrefix, 0) == 0) return error.substr(kPrefix.size());
  return error;
}

ParsedRequest parse_event(std::string_view payload) {
  if (payload.empty()) {
    return fail("EVENT needs an event line (cable_down <u> <v>, "
                "cable_up <u> <v>, switch_down <s>, switch_up <s> or "
                "query <src> <dst>)");
  }
  const fm::EventScript script =
      fm::parse_event_script(std::string{payload});
  if (!script.ok) return fail(strip_event_prefix(script.error));
  if (script.events.size() != 1) {
    // A single line can only yield 0 or 1 events; 0 means the payload was
    // all comment, which EVENT does not accept.
    return fail("EVENT needs an event line, got a comment");
  }
  if (script.events.front().timed) {
    return fail("EVENT does not accept @<cycle> stamps (replay scripts "
                "only; a live daemon applies events on arrival)");
  }
  ParsedRequest parsed;
  parsed.ok = true;
  parsed.request.command = Command::kEvent;
  parsed.request.event = script.events.front();
  return parsed;
}

ParsedRequest parse_path(const std::vector<std::string_view>& tokens) {
  if (tokens.size() < 3 || tokens.size() > 4) {
    return fail("PATH expects <src> <dst> [K], got " +
                std::to_string(tokens.size() - 1) + " operand" +
                (tokens.size() == 2 ? "" : "s"));
  }
  ParsedRequest parsed;
  parsed.request.command = Command::kPath;
  if (!parse_u64(tokens[1], parsed.request.src)) {
    return fail("bad src host id '" + clip(tokens[1]) + "'");
  }
  if (!parse_u64(tokens[2], parsed.request.dst)) {
    return fail("bad dst host id '" + clip(tokens[2]) + "'");
  }
  if (tokens.size() == 4) {
    std::uint64_t k = 0;
    if (!parse_u64(tokens[3], k) || k == 0) {
      return fail("bad variant count '" + clip(tokens[3]) +
                  "' (expected an integer >= 1)");
    }
    if (k > 0xffffffffULL) {
      return fail("variant count " + std::to_string(k) + " out of range");
    }
    parsed.request.limit = static_cast<std::uint32_t>(k);
  }
  parsed.ok = true;
  return parsed;
}

ParsedRequest parse_bare(Command command,
                         const std::vector<std::string_view>& tokens) {
  if (tokens.size() > 1) {
    return fail("trailing token '" + clip(tokens[1]) + "' after " +
                std::string{to_string(command)});
  }
  ParsedRequest parsed;
  parsed.ok = true;
  parsed.request.command = command;
  return parsed;
}

}  // namespace

ParsedRequest parse_request(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    return fail("request line exceeds " + std::to_string(kMaxRequestBytes) +
                " bytes");
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (const auto hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  const std::string_view trimmed = trim(line);
  if (trimmed.empty()) {
    ParsedRequest parsed;
    parsed.blank = true;
    return parsed;
  }

  const auto tokens = tokenize(trimmed);
  const std::string_view keyword = tokens.front();
  // Remainder after the command keyword, for the rest-of-line commands
  // (TOPO specs legally contain whitespace; EVENT reuses the fm grammar).
  const std::string_view rest =
      trim(trimmed.substr(keyword.size()));

  if (keyword_is(keyword, "LOAD")) {
    if (rest.empty()) return fail("LOAD expects a fabric file path");
    if (tokens.size() > 2) {
      return fail("trailing token '" + clip(tokens[2]) + "' after the "
                  "LOAD path");
    }
    ParsedRequest parsed;
    parsed.ok = true;
    parsed.request.command = Command::kLoad;
    parsed.request.text = std::string{rest};
    return parsed;
  }
  if (keyword_is(keyword, "TOPO")) {
    if (rest.empty()) {
      return fail("TOPO expects a topology spec (XGFT(...) or RRG(...))");
    }
    ParsedRequest parsed;
    parsed.ok = true;
    parsed.request.command = Command::kTopo;
    parsed.request.text = std::string{rest};
    return parsed;
  }
  if (keyword_is(keyword, "EVENT")) return parse_event(rest);
  if (keyword_is(keyword, "PATH")) return parse_path(tokens);
  if (keyword_is(keyword, "STATS")) return parse_bare(Command::kStats, tokens);
  if (keyword_is(keyword, "GEN")) return parse_bare(Command::kGen, tokens);
  if (keyword_is(keyword, "QUIT")) return parse_bare(Command::kQuit, tokens);
  if (keyword_is(keyword, "SHUTDOWN")) {
    return parse_bare(Command::kShutdown, tokens);
  }
  return fail("unknown command '" + clip(keyword) +
              "' (expected LOAD, TOPO, EVENT, PATH, STATS, GEN, QUIT or "
              "SHUTDOWN)");
}

}  // namespace lmpr::serve
