#include "serve/service.hpp"

#include <utility>

#include "discovery/io.hpp"
#include "shard/sharded_manager.hpp"
#include "topology/factory.hpp"
#include "topology/generic.hpp"

namespace lmpr::serve {

RoutingService::RoutingService(ServeConfig config)
    : config_(std::move(config)) {
  ingest_ = std::thread([this] { ingest_loop(); });
}

RoutingService::~RoutingService() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  ingest_.join();
}

void RoutingService::enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_all();
}

void RoutingService::ingest_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void RoutingService::publish(bool tables_changed) {
  auto snap = std::make_shared<Snapshot>();
  snap->live = live_;
  const auto previous = snapshot();
  if (tables_changed || previous == nullptr ||
      previous->live != live_) {
    snap->tables =
        std::make_shared<const fabric::Tables>(live_->manager->tables());
    ++generation_;
  } else {
    snap->tables = previous->tables;  // same table set, new counters
  }
  snap->generation = generation_;
  snap->summary = live_->manager->summary();
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snap);
}

LoadOutcome RoutingService::install(std::shared_ptr<Live> live) {
  std::promise<LoadOutcome> promise;
  auto future = promise.get_future();
  enqueue([this, live = std::move(live), &promise]() mutable {
    live_ = std::move(live);
    publish(/*tables_changed=*/true);
    LoadOutcome outcome;
    outcome.ok = true;
    outcome.name = live_->name;
    const topo::Topology& topology = live_->manager->topology();
    outcome.hosts = topology.num_hosts();
    outcome.nodes = topology.num_nodes();
    outcome.cables = topology.num_cables();
    outcome.k_paths = config_.fm.k_paths;
    outcome.generation = generation_;
    promise.set_value(std::move(outcome));
  });
  return future.get();
}

LoadOutcome RoutingService::load_fabric(const discovery::RawFabric& fabric,
                                        std::string name) {
  auto live = std::make_shared<Live>();
  if (config_.shards == 1) {
    live->manager = std::make_unique<fm::FabricManager>(fabric, config_.fm);
  } else {
    shard::ShardConfig sharded;
    sharded.fm = config_.fm;
    sharded.shards = config_.shards;
    live->manager =
        std::make_unique<shard::ShardedFabricManager>(fabric, sharded);
  }
  if (!live->manager->ok()) {
    LoadOutcome outcome;
    outcome.error = live->manager->error();
    return outcome;
  }
  live->name = std::move(name);
  return install(std::move(live));
}

LoadOutcome RoutingService::load_spec(const std::string& spec) {
  discovery::RawFabric fabric;
  std::string name;
  try {
    const auto topology = topo::make_topology(spec);
    fabric = topo::to_raw_fabric(*topology);
    name = topology->name();
  } catch (const std::exception& error) {
    LoadOutcome outcome;
    outcome.error = error.what();
    return outcome;
  }
  return load_fabric(fabric, std::move(name));
}

LoadOutcome RoutingService::load_file(const std::string& path) {
  const auto loaded = discovery::try_load_fabric_file(path);
  if (!loaded.ok) {
    LoadOutcome outcome;
    outcome.error = loaded.error;
    return outcome;
  }
  return load_fabric(loaded.fabric, path);
}

bool RoutingService::loaded() const noexcept { return snapshot() != nullptr; }

std::uint64_t RoutingService::generation() const noexcept {
  const auto snap = snapshot();
  return snap == nullptr ? 0 : snap->generation;
}

std::future<AppliedEvent> RoutingService::submit_event(const fm::Event& event) {
  auto promise = std::make_shared<std::promise<AppliedEvent>>();
  auto future = promise->get_future();
  enqueue([this, event, promise] {
    AppliedEvent applied;
    if (live_ == nullptr) {
      applied.record.event = event;
      applied.record.ok = false;
      applied.record.error = "no fabric loaded (use LOAD or TOPO first)";
      promise->set_value(std::move(applied));
      return;
    }
    applied.record = live_->manager->apply(event);
    publish(applied.record.ok && applied.record.event.topology_event());
    applied.generation = generation_;
    promise->set_value(std::move(applied));
  });
  return future;
}

AppliedEvent RoutingService::apply_event(const fm::Event& event) {
  return submit_event(event).get();
}

PathResult RoutingService::query_path(std::uint64_t src, std::uint64_t dst,
                                      std::uint32_t limit) const {
  PathResult result;
  const auto snap = snapshot();
  if (snap == nullptr) {
    result.error = "no fabric loaded (use LOAD or TOPO first)";
    return result;
  }
  const fm::FabricManager& manager = *snap->live->manager;
  const topo::Topology& topology = manager.topology();
  const fabric::Lft& lft = manager.lft();
  const std::uint64_t hosts = topology.num_hosts();
  if (src >= hosts) {
    result.error = "src " + std::to_string(src) + " out of range (" +
                   std::to_string(hosts) + " hosts)";
    return result;
  }
  if (dst >= hosts) {
    result.error = "dst " + std::to_string(dst) + " out of range (" +
                   std::to_string(hosts) + " hosts)";
    return result;
  }
  const std::uint32_t block = lft.block();
  if (limit > block) {
    result.error = "variant count " + std::to_string(limit) +
                   " exceeds the installed block (" + std::to_string(block) +
                   " variants)";
    return result;
  }
  const std::uint32_t count = limit == 0 ? block : limit;

  result.ok = true;
  result.generation = snap->generation;
  result.variants = count;
  result.walks.reserve(count);
  std::vector<topo::LinkId> links;
  for (std::uint32_t j = 0; j < count; ++j) {
    VariantWalk walk;
    walk.variant = j;
    walk.delivered =
        fm::follow_route(topology, lft, *snap->tables, src, dst, j, links);
    walk.nodes.reserve(links.size() + 1);
    walk.nodes.push_back(topology.host(src));
    for (const topo::LinkId link : links) {
      walk.nodes.push_back(topology.link(link).dst);
    }
    if (walk.delivered) ++result.usable;
    result.walks.push_back(std::move(walk));
  }
  return result;
}

StatsResult RoutingService::stats() const {
  StatsResult result;
  const auto snap = snapshot();
  if (snap == nullptr) {
    result.error = "no fabric loaded (use LOAD or TOPO first)";
    return result;
  }
  result.ok = true;
  result.generation = snap->generation;
  result.name = snap->live->name;
  const topo::Topology& topology = snap->live->manager->topology();
  result.hosts = topology.num_hosts();
  result.cables = topology.num_cables();
  result.summary = snap->summary;
  return result;
}

}  // namespace lmpr::serve
