// The routing-controller service behind `lmpr serve`: one long-lived
// object that owns a topo::Topology + fm::FabricManager and answers path
// queries WHILE repairs run, subnet-manager style.
//
// Threading model (the whole point of this layer):
//
//   * ONE ingest thread owns every mutation.  LOAD/TOPO swaps and EVENT
//     repairs are closures executed in submission order on that thread;
//     the FabricManager is never touched from anywhere else.
//   * Readers NEVER WAIT ON A REPAIR.  After every mutation the ingest
//     thread publishes an immutable Snapshot -- the exposed forwarding
//     tables copied at that instant, the fabric they belong to (kept
//     alive by shared ownership), the table generation and the summary
//     counters -- behind a mutex held only for the shared_ptr copy.  A
//     PATH query grabs the pointer once and walks that snapshot to
//     completion: the repair itself runs entirely outside that mutex, so
//     a query can never block on a repair in flight and can never
//     observe a half-repaired table (the RCU-style epoch scheme the
//     fabric manager's atomic set_tables swap was built for -- see
//     DESIGN §13).  std::atomic<std::shared_ptr> would make the pointer
//     grab lock-free, but GCC 12's libstdc++ releases load()'s internal
//     lock bit with a relaxed RMW, so the reader's critical section is
//     formally unordered against the next store() -- a data race TSan
//     (correctly) reports; the plain mutex is the portable spelling.
//   * The table GENERATION counts installed table sets: 1 after a load,
//     +1 per successful topology event.  Query events and rejected
//     events republish summary counters under the same generation (the
//     tables they expose are bitwise the same set).
//
// The service is transport-agnostic: serve/session.cpp speaks the line
// protocol over any iostream pair, serve/socket.cpp multiplexes sessions
// over a UNIX domain socket, and the serve_throughput bench drives the
// API directly from hammering reader threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "discovery/recognize.hpp"
#include "fm/events.hpp"
#include "fm/fabric_manager.hpp"
#include "topology/topology.hpp"

namespace lmpr::serve {

struct ServeConfig {
  /// Forwarded to every FabricManager the service installs.  Defaults
  /// diverge from FmConfig in two places: generic fabrics are admitted
  /// (the TOPO command accepts any factory spec) and per-event link-load
  /// evaluation is off (a daemon repairs on the fault path; load studies
  /// belong to `lmpr fm`).
  fm::FmConfig fm;

  /// Shard count for every installed manager: 1 = monolithic (default),
  /// 0 = auto (one shard per island), N = that many shards.  Sharding is
  /// invisible to the protocol: repairs produce bit-identical tables, and
  /// the service still publishes exactly one immutable snapshot per EVENT
  /// (shard results fold into one generation before the swap), so PATH
  /// queries keep their lock-free snapshot isolation unchanged.
  std::size_t shards = 1;

  ServeConfig() {
    fm.allow_generic = true;
    fm.track_link_load = false;
  }
};

struct LoadOutcome {
  bool ok = false;
  std::string error;
  std::string name;  ///< topology name or fabric file path
  std::uint64_t hosts = 0;
  std::uint64_t nodes = 0;
  std::uint64_t cables = 0;
  std::uint64_t k_paths = 0;
  std::uint64_t generation = 0;
};

/// An EVENT outcome plus the generation its effect is published under.
struct AppliedEvent {
  fm::EventRecord record;
  std::uint64_t generation = 0;
};

struct VariantWalk {
  std::uint32_t variant = 0;
  bool delivered = false;
  /// Hop-order node ids, starting at the source host.  For an
  /// undelivered variant this is the partial walk up to the node whose
  /// table has no surviving entry.
  std::vector<topo::NodeId> nodes;
};

struct PathResult {
  bool ok = false;
  std::string error;
  std::uint64_t generation = 0;
  std::uint32_t variants = 0;  ///< walks reported (= min(K, installed))
  std::uint32_t usable = 0;    ///< reported walks that deliver
  std::vector<VariantWalk> walks;
};

struct StatsResult {
  bool ok = false;
  std::string error;
  std::uint64_t generation = 0;
  std::string name;
  std::uint64_t hosts = 0;
  std::uint64_t cables = 0;
  fm::FmSummary summary;
};

class RoutingService {
 public:
  explicit RoutingService(ServeConfig config = {});
  ~RoutingService();

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  const ServeConfig& config() const noexcept { return config_; }

  /// Installs a fabric / topology, replacing any previous one.  Blocks
  /// until the swap is published (loads are control-plane; queries keep
  /// being served from the OLD snapshot until then).
  LoadOutcome load_fabric(const discovery::RawFabric& fabric,
                          std::string name);
  LoadOutcome load_spec(const std::string& spec);
  LoadOutcome load_file(const std::string& path);

  bool loaded() const noexcept;

  /// Enqueues one event for the ingest thread; the future resolves after
  /// the repair ran and its table set was published.  Queries issued
  /// meanwhile keep reading the previous snapshot -- they never wait.
  std::future<AppliedEvent> submit_event(const fm::Event& event);
  /// submit_event + wait.
  AppliedEvent apply_event(const fm::Event& event);

  /// Walks the first `limit` installed variants (0 = all) for the pair
  /// from the CURRENT snapshot.  Lock-free; every walk in the result is
  /// computed from the same table generation.
  PathResult query_path(std::uint64_t src, std::uint64_t dst,
                        std::uint32_t limit = 0) const;

  StatsResult stats() const;

  /// Current table generation (0 until the first load).
  std::uint64_t generation() const noexcept;

 private:
  /// One installed fabric: the manager plus its identity.  Snapshots
  /// share ownership so a LOAD replacing the fabric cannot free the
  /// topology under a reader still walking the old tables.
  struct Live {
    std::unique_ptr<fm::FabricManager> manager;
    std::string name;
  };

  struct Snapshot {
    std::shared_ptr<const Live> live;
    /// The exposed tables copied at publication (the manager's own copy
    /// mutates in place during the next repair).
    std::shared_ptr<const fabric::Tables> tables;
    std::uint64_t generation = 0;
    fm::FmSummary summary;
  };

  using Task = std::function<void()>;

  std::shared_ptr<const Snapshot> snapshot() const {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return snapshot_;
  }

  LoadOutcome install(std::shared_ptr<Live> live);  // any thread; blocks
  void publish(bool tables_changed);                // ingest thread only
  void enqueue(Task task);
  void ingest_loop();

  ServeConfig config_;
  // Held only for the shared_ptr copy -- see the header comment for why
  // this is a mutex and not std::atomic<std::shared_ptr>.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;

  // Ingest-thread-only state.
  std::shared_ptr<Live> live_;
  std::uint64_t generation_ = 0;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::thread ingest_;
};

}  // namespace lmpr::serve
