// UNIX-domain-socket front end for the routing service: binds a
// filesystem socket, accepts connections, and runs one protocol session
// per connection on its own thread.  All sessions share ONE
// RoutingService, so concurrent clients exercise exactly the
// snapshot-reader / single-ingest-thread split the service was built
// around: a PATH query on one connection never waits for an EVENT repair
// submitted on another.
//
// SHUTDOWN (from any connection) closes the listener, drains the open
// sessions and returns; QUIT only closes its own connection.  The socket
// file is unlinked on the way out.
//
// POSIX only -- the driver rejects --socket on other platforms.
#pragma once

#include <string>

#include "serve/service.hpp"

namespace lmpr::serve {

/// True when this build can serve UNIX domain sockets.
bool socket_supported() noexcept;

/// Binds `path` (replacing a stale socket file) and serves until a client
/// sends SHUTDOWN.  Returns 0 on a clean shutdown; on a socket error
/// returns 1 with a one-line diagnostic in `error`.
int run_socket_server(RoutingService& service, const std::string& path,
                      std::string& error);

}  // namespace lmpr::serve
