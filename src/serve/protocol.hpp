// The `lmpr serve` wire protocol: one request per line, one response per
// request (multi-line responses end with a bare `END`), '#' starts a
// comment, blank/comment-only lines elicit no response.
//
//   LOAD <fabric-file>        install a discovery snapshot from disk
//   TOPO <spec>               install a topology by factory spec string
//   EVENT <fm-event-line>     apply one fm event (cable_down <u> <v>,
//                             cable_up <u> <v>, switch_down <s>,
//                             switch_up <s>, query <src> <dst>)
//   PATH <src> <dst> [K]      the first K installed variant walks for the
//                             pair from the live tables (default: all)
//   STATS                     cumulative fabric-manager summary
//   GEN                       current table generation
//   QUIT                      end this session (socket: close connection)
//   SHUTDOWN                  end this session AND stop the daemon
//
// Command keywords are case-insensitive; operands are not.  Parsing is
// TOTAL: any malformed line -- unknown command, truncated operands,
// oversized input, out-of-range ids, stray tokens -- produces ok = false
// with a one-line reason the session renders as `ERR <line>:<reason>`,
// never an exception.  The EVENT payload reuses the fm::events grammar
// (and its diagnostics) verbatim, minus the `@<cycle>` replay stamps,
// which have no meaning against a live daemon.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fm/events.hpp"

namespace lmpr::serve {

enum class Command {
  kLoad,
  kTopo,
  kEvent,
  kPath,
  kStats,
  kGen,
  kQuit,
  kShutdown,
};

std::string_view to_string(Command command) noexcept;

struct Request {
  Command command = Command::kGen;
  /// LOAD: the fabric file path; TOPO: the factory spec string.
  std::string text;
  /// EVENT: the parsed fm event.
  fm::Event event;
  /// PATH operands.
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  /// PATH optional K; 0 = every installed variant.
  std::uint32_t limit = 0;
};

struct ParsedRequest {
  bool ok = false;
  /// Blank or comment-only line: nothing to answer (ok is false too).
  bool blank = false;
  /// Reason when !ok && !blank.  No line number -- the session prepends
  /// its own input-line counter.
  std::string error;
  Request request;
};

/// Longest accepted request line (covers "oversized token" inputs: a
/// line past the cap is rejected whole, before tokenization).
inline constexpr std::size_t kMaxRequestBytes = 4096;

/// Parses one request line (no trailing newline; a trailing '\r' from
/// CRLF input is stripped).  Total: never throws.
ParsedRequest parse_request(std::string_view line);

}  // namespace lmpr::serve
