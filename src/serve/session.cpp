#include "serve/session.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "serve/protocol.hpp"

namespace lmpr::serve {

namespace {

/// Wall-clock seconds with a fixed shape so ServeConfig::fm.zero_timings
/// renders the same bytes on every run (golden sessions).
std::string format_seconds(double seconds) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  out << seconds;
  return out.str();
}

std::string render_load(const LoadOutcome& outcome) {
  std::ostringstream out;
  out << "OK " << outcome.name << " hosts=" << outcome.hosts
      << " nodes=" << outcome.nodes << " cables=" << outcome.cables
      << " k=" << outcome.k_paths << " gen=" << outcome.generation;
  return out.str();
}

std::string render_event(const AppliedEvent& applied) {
  const fm::EventRecord& record = applied.record;
  std::ostringstream out;
  out << "OK gen=" << applied.generation;
  if (record.event.topology_event()) {
    out << " churn=" << record.churn
        << " repaired=" << record.destinations_repaired
        << " full=" << (record.full_rebuild ? 1 : 0)
        << " disconnected=" << record.disconnected_pairs;
  } else {
    out << " connected=" << (record.connected ? 1 : 0)
        << " usable=" << record.usable_variants
        << " distinct=" << record.distinct_paths
        << " hops=" << record.primary_hops;
  }
  return out.str();
}

void render_path(const PathResult& result, std::ostream& out) {
  out << "OK gen=" << result.generation << " variants=" << result.variants
      << " usable=" << result.usable << "\n";
  for (const VariantWalk& walk : result.walks) {
    out << "VAR " << walk.variant
        << (walk.delivered ? " delivered" : " dropped") << " nodes=";
    for (std::size_t i = 0; i < walk.nodes.size(); ++i) {
      if (i > 0) out << '>';
      out << walk.nodes[i];
    }
    out << "\n";
  }
  out << "END";
}

std::string render_stats(const StatsResult& result) {
  const fm::FmSummary& s = result.summary;
  std::ostringstream out;
  out << "OK gen=" << result.generation << " name=" << result.name
      << " hosts=" << result.hosts << " cables=" << result.cables
      << " events=" << s.events << " topology=" << s.topology_events
      << " queries=" << s.queries << " churn=" << s.total_churn
      << " full_rebuilds=" << s.full_rebuilds
      << " repaired=" << s.destinations_repaired
      << " max_window=" << s.max_disconnected_window
      << " disconnected=" << s.disconnected_pairs
      << " repair_seconds=" << format_seconds(s.total_repair_seconds);
  return out.str();
}

}  // namespace

SessionExit run_session(RoutingService& service, std::istream& in,
                        std::ostream& out) {
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const ParsedRequest parsed = parse_request(line);
    if (parsed.blank) continue;

    const auto err = [&](const std::string& reason) {
      out << "ERR " << line_no << ": " << reason << "\n" << std::flush;
    };
    if (!parsed.ok) {
      err(parsed.error);
      continue;
    }

    const Request& request = parsed.request;
    switch (request.command) {
      case Command::kLoad:
      case Command::kTopo: {
        const LoadOutcome outcome = request.command == Command::kLoad
                                        ? service.load_file(request.text)
                                        : service.load_spec(request.text);
        if (!outcome.ok) {
          err(outcome.error);
        } else {
          out << render_load(outcome) << "\n" << std::flush;
        }
        break;
      }
      case Command::kEvent: {
        // Synchronous on purpose: a scripted session stays deterministic
        // (responses in request order); concurrent sessions' PATH queries
        // still never wait on this repair.
        const AppliedEvent applied = service.apply_event(request.event);
        if (!applied.record.ok) {
          err(applied.record.error);
        } else {
          out << render_event(applied) << "\n" << std::flush;
        }
        break;
      }
      case Command::kPath: {
        const PathResult result =
            service.query_path(request.src, request.dst, request.limit);
        if (!result.ok) {
          err(result.error);
        } else {
          render_path(result, out);
          out << "\n" << std::flush;
        }
        break;
      }
      case Command::kStats: {
        const StatsResult result = service.stats();
        if (!result.ok) {
          err(result.error);
        } else {
          out << render_stats(result) << "\n" << std::flush;
        }
        break;
      }
      case Command::kGen:
        out << "OK gen=" << service.generation() << "\n" << std::flush;
        break;
      case Command::kQuit:
        out << "OK bye\n" << std::flush;
        return SessionExit::kQuit;
      case Command::kShutdown:
        out << "OK shutting down\n" << std::flush;
        return SessionExit::kShutdown;
    }
  }
  return SessionExit::kEof;
}

}  // namespace lmpr::serve
