#include "serve/socket.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <thread>
#include <vector>

#include "serve/session.hpp"

namespace lmpr::serve {

namespace {

/// Minimal bidirectional streambuf over a connected socket fd, so one
/// connection can feed run_session() the same istream/ostream pair the
/// stdio mode uses.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t got = 0;
    do {
      got = ::read(fd_, in_, sizeof(in_));
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return traits_type::eof();
    setg(in_, in_, in_ + got);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (!drain()) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return drain() ? 0 : -1; }

 private:
  bool drain() {
    const char* next = pbase();
    while (next < pptr()) {
      const ssize_t put =
          ::write(fd_, next, static_cast<std::size_t>(pptr() - next));
      if (put < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      next += put;
    }
    setp(out_, out_ + sizeof(out_));
    return true;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

}  // namespace

bool socket_supported() noexcept { return true; }

int run_socket_server(RoutingService& service, const std::string& path,
                      std::string& error) {
  // A client vanishing mid-response must not kill the daemon; the write
  // failure surfaces as a stream error and the session ends.
  ::signal(SIGPIPE, SIG_IGN);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "socket path '" + path + "' exceeds " +
            std::to_string(sizeof(addr.sun_path) - 1) + " bytes";
    return 1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    error = std::string{"socket: "} + std::strerror(errno);
    return 1;
  }
  ::unlink(path.c_str());  // replace a stale socket from a dead daemon
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error = "bind '" + path + "': " + std::strerror(errno);
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 8) != 0) {
    error = "listen '" + path + "': " + std::strerror(errno);
    ::close(listener);
    ::unlink(path.c_str());
    return 1;
  }

  std::atomic<bool> stopping{false};
  std::vector<std::thread> sessions;
  for (;;) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR && !stopping.load()) continue;
      break;  // listener shut down by a SHUTDOWN session
    }
    if (stopping.load()) {
      ::close(conn);
      break;
    }
    sessions.emplace_back([&service, &stopping, listener, conn] {
      FdStreambuf buffer(conn);
      std::istream in(&buffer);
      std::ostream out(&buffer);
      const SessionExit exit = run_session(service, in, out);
      out.flush();
      ::close(conn);
      if (exit == SessionExit::kShutdown) {
        stopping.store(true);
        ::shutdown(listener, SHUT_RDWR);  // unblocks the accept loop
      }
    });
  }
  for (std::thread& session : sessions) session.join();
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace lmpr::serve

#else  // !(__unix__ || __APPLE__)

namespace lmpr::serve {

bool socket_supported() noexcept { return false; }

int run_socket_server(RoutingService&, const std::string&,
                      std::string& error) {
  error = "UNIX domain sockets are not supported on this platform";
  return 1;
}

}  // namespace lmpr::serve

#endif
