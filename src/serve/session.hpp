// One protocol session: reads request lines from an istream, answers on
// an ostream, until EOF / QUIT / SHUTDOWN.  Transport-agnostic -- the
// driver binds it to stdin/stdout, serve/socket.cpp to a connection
// stream, and tests to stringstreams.
//
// Response grammar (one response per non-blank request):
//
//   OK <fields...>                  success one-liner
//   ERR <line>: <reason>            any failure, echoing the 1-based
//                                   input line number
//   OK gen=<G> variants=<V> usable=<U>
//   VAR <j> delivered|dropped nodes=<a>b>c...>     (PATH only)
//   END                                            (PATH terminator)
//
// Every response is flushed before the next request is read, so a client
// can drive the daemon interactively over a pipe or socket.
#pragma once

#include <iosfwd>

#include "serve/service.hpp"

namespace lmpr::serve {

enum class SessionExit {
  kEof,       ///< input ran out
  kQuit,      ///< client sent QUIT: close this session only
  kShutdown,  ///< client sent SHUTDOWN: stop the whole daemon
};

SessionExit run_session(RoutingService& service, std::istream& in,
                        std::ostream& out);

}  // namespace lmpr::serve
